// Package bench implements the paper's benchmarking protocol (§2.1) and
// one driver per figure/table of the evaluation. Each driver builds a
// fresh simulated cluster, runs the three protocol steps —
//
//	(1) computation without communication,
//	(2) communication without computation,
//	(3) computation with side-by-side communication,
//
// — and reports medians with first/last deciles, exactly the statistics
// the paper plots.
package bench

import (
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Env is the shared experiment environment.
type Env struct {
	// Spec selects the cluster model; drivers never mutate it (they copy
	// before applying per-experiment settings).
	Spec *topology.NodeSpec
	// Seed makes every run reproducible; run r of an experiment uses
	// Seed+r.
	Seed int64
	// Runs is how many times each configuration is repeated to build the
	// decile bands.
	Runs int
	// Meter, when non-nil, is notified of every simulated world the
	// drivers build, for per-experiment accounting (world count, total
	// simulated seconds). Nil disables accounting.
	Meter *Meter
	// Faults, when non-nil, is installed into every world the drivers
	// build: each run gets a fresh fault.Injector seeded from the run's
	// world seed, so injection composes with the usual seed+run
	// reproducibility. Nil runs healthy worlds with an unchanged event
	// sequence.
	Faults *fault.Schedule
	// Sched, when non-nil, executes compiled sweep points (see sweep.go)
	// on a campaign-wide pool, possibly replaying them from a persistent
	// cache. Nil runs sweep points inline, serially, with identical
	// output.
	Sched PointRunner
	// Fabric, when non-nil, replaces the legacy two-node full mesh with
	// a routed fabric (internal/topology) in every world the drivers
	// build. The paper's experiments are two-ranked, so the fabric must
	// have exactly two hosts (the "two-node" preset degenerates
	// byte-identically to the legacy network); the fabric-* experiment
	// family sizes its own clusters and ignores this field.
	Fabric *topology.FabricSpec
	// NoPool disables world recycling for points run under this
	// environment: every newWorld builds from scratch even when the
	// arena holds a compatible drained world. The differential tests use
	// it to check that pooled and fresh execution produce byte-identical
	// records; production campaigns leave it false.
	NoPool bool

	// keeper, set by ExecutePoint on the point's isolated clone,
	// collects the worlds the point builds so they can be recycled once
	// its record is sealed. Nil outside point execution (no pooling).
	keeper *worldKeeper
}

// Isolated returns a copy of the environment that shares no mutable
// state with the receiver: the spec is deep-copied and the copy gets
// its own fresh Meter. Concurrent experiments must each run against
// their own isolated Env.
func (e Env) Isolated() Env {
	e.Spec = e.Spec.Clone()
	e.Meter = &Meter{}
	if e.Fabric != nil {
		fab := *e.Fabric
		e.Fabric = &fab
	}
	// World recycling is scoped to one point execution; an isolated
	// clone starts outside any such scope (ExecutePoint installs its
	// own keeper explicitly).
	e.keeper = nil
	return e
}

// track registers a freshly built world's kernel with the meter.
func (e Env) track(k *sim.Kernel) {
	if e.Meter != nil {
		e.Meter.track(k)
	}
}

// DefaultEnv returns the environment used by the harness: the henri
// cluster, 3 repetitions.
func DefaultEnv() Env {
	return Env{Spec: topology.Henri(), Seed: 1, Runs: 3}
}

func (e Env) runs() int {
	if e.Runs <= 0 {
		return 1
	}
	return e.Runs
}

// CommConfig describes the communication side of an experiment.
type CommConfig struct {
	// CommCore is the core of the communication thread on both nodes;
	// -1 keeps each rank's default (far from the NIC).
	CommCore int
	// BufNUMA places the ping-pong buffers; -1 means the NIC NUMA node.
	BufNUMA int
	// Size is the message size; Iters/Warmup the ping-pong counts.
	Size          int64
	Iters, Warmup int
}

// LatencyConfig returns the paper's latency benchmark: 4-byte messages.
func LatencyConfig() CommConfig {
	return CommConfig{CommCore: -1, BufNUMA: -1, Size: 4, Iters: 30, Warmup: 5}
}

// BandwidthConfig returns the paper's bandwidth benchmark: 64 MB
// messages, asymptotic regime.
func BandwidthConfig() CommConfig {
	return CommConfig{CommCore: -1, BufNUMA: -1, Size: 64 << 20, Iters: 6, Warmup: 2}
}

// ComputeConfig describes the computation side of an experiment.
type ComputeConfig struct {
	// Slice is one iteration of the kernel on one core (MemNUMA set by
	// the driver for placement studies).
	Slice machine.ComputeSpec
	// Cores is the number of computing cores per node; they are bound to
	// the lowest-numbered cores, skipping the communication core (the
	// paper's "logical core numbering order").
	Cores int
	// MinIters is the minimum number of iterations per core in the
	// compute-alone step.
	MinIters int
}

// InterferenceResult aggregates the three protocol steps for one
// configuration.
type InterferenceResult struct {
	// ComputeAlone / ComputeTogether summarise the per-core compute
	// metric (bytes/s for memory kernels, iteration seconds recorded in
	// ComputeSecsAlone/Together for CPU kernels) across cores and runs.
	ComputeAlone    stats.Summary // per-core bytes/s
	ComputeTogether stats.Summary
	// ComputeSecsAlone / Together summarise seconds per iteration.
	ComputeSecsAlone    stats.Summary
	ComputeSecsTogether stats.Summary
	// CommAlone / CommTogether summarise the half-round-trip latency in
	// seconds across iterations and runs.
	CommAlone    stats.Summary
	CommTogether stats.Summary
	// Size echoes the message size, for bandwidth conversion.
	Size int64
}

// BandwidthAlone returns the comm-alone NetPIPE bandwidth in bytes/s.
func (r InterferenceResult) BandwidthAlone() float64 {
	if r.CommAlone.Median == 0 {
		return 0
	}
	return float64(r.Size) / r.CommAlone.Median
}

// BandwidthTogether returns the side-by-side bandwidth in bytes/s.
func (r InterferenceResult) BandwidthTogether() float64 {
	if r.CommTogether.Median == 0 {
		return 0
	}
	return float64(r.Size) / r.CommTogether.Median
}

// computeCores returns the first n cores in logical order, skipping the
// communication core.
func computeCores(spec *topology.NodeSpec, n, commCore int) []int {
	var cores []int
	for c := 0; c < spec.Cores() && len(cores) < n; c++ {
		if c == commCore {
			continue
		}
		cores = append(cores, c)
	}
	return cores
}

// newWorld builds a fresh cluster + network + MPI world for one run and
// registers it with the environment's meter. When the environment
// carries a fault schedule, a fresh injector (seeded from this world's
// seed) is installed on the network before the MPI world binds to it.
func newWorld(env Env, seed int64) (*machine.Cluster, *mpi.World) {
	// Healthy legacy-network worlds built inside a point execution are
	// recycled through the arena: a pooled world is rewound to exactly
	// the state a fresh build would have, so the event sequence — and
	// therefore every golden — is unchanged.
	poolable := env.keeper != nil && !env.NoPool && env.Faults == nil && env.Fabric == nil
	if poolable {
		if pw, ok := arena.get(machine.ShapeOf(env.Spec)); ok {
			pw.c.Reset(env.Spec, seed)
			pw.w.Network().Reset()
			pw.w.Reset()
			env.track(pw.c.K)
			if env.Meter != nil {
				for _, n := range pw.c.Nodes {
					env.Meter.TrackCounters(n.Counters)
				}
			}
			env.keeper.worlds = append(env.keeper.worlds, pw)
			return pw.c, pw.w
		}
	}
	c := machine.NewCluster(env.Spec, 2, seed)
	env.track(c.K)
	var nw *net.Network
	if env.Fabric != nil {
		// NewFabric rejects a fabric whose host count differs from the
		// cluster's two ranks.
		nw = net.NewFabric(c, env.Fabric, false)
	} else {
		nw = net.New(c)
	}
	if env.Faults != nil {
		nw.InstallFaults(fault.NewInjector(c, env.Faults, seed))
	}
	if env.Meter != nil {
		for _, n := range c.Nodes {
			env.Meter.TrackCounters(n.Counters)
		}
	}
	w := mpi.NewWorld(c, nw)
	if poolable {
		env.keeper.worlds = append(env.keeper.worlds, pooledWorld{c: c, w: w})
	}
	// Note: node-crash schedules additionally need the heartbeat failure
	// detector, but arming it here would keep every kernel alive forever
	// (the monitors tick until stopped, so Run() would never drain). The
	// crash-aware drivers arm it themselves and Stop() it when done.
	return c, w
}

// applyComm binds the communication threads and builds the ping-pong.
func applyComm(w *mpi.World, cc CommConfig) *mpi.PingPong {
	pp := &mpi.PingPong{Size: cc.Size, Iters: cc.Iters, Warmup: cc.Warmup}
	for i := 0; i < 2; i++ {
		r := w.Rank(i)
		if cc.CommCore >= 0 {
			r.SetCommCore(cc.CommCore)
		}
		numa := r.Node.Spec.NIC.NUMA
		if cc.BufNUMA >= 0 {
			numa = cc.BufNUMA
		}
		buf := r.Node.Alloc(maxInt64(cc.Size, 1), numa)
		if i == 0 {
			pp.InitBuf = buf
		} else {
			pp.RespBuf = buf
		}
	}
	return pp
}

// Interference runs the full §2.1 protocol for one configuration.
func Interference(env Env, comm CommConfig, comp ComputeConfig) InterferenceResult {
	res := InterferenceResult{Size: comm.Size}
	// Preallocate the accumulators to their exact final sizes: one
	// compute sample per (run, node-0 core) and one latency sample per
	// (run, ping-pong iteration). These appends are the hottest
	// measurement path of every sweep point.
	compCap := env.runs() * comp.Cores
	latCap := env.runs() * comm.Iters
	bwAlone := make([]float64, 0, compCap)
	bwTogether := make([]float64, 0, compCap)
	secsAlone := make([]float64, 0, compCap)
	secsTogether := make([]float64, 0, compCap)
	latAlone := make([]float64, 0, latCap)
	latTogether := make([]float64, 0, latCap)

	for run := 0; run < env.runs(); run++ {
		seed := env.Seed + int64(run)

		// Step 1: computation without communication.
		if comp.Cores > 0 {
			c, w := newWorld(env, seed)
			cores := computeCores(env.Spec, comp.Cores, pickCommCore(w, comm))
			iters := comp.MinIters
			if iters <= 0 {
				iters = 3
			}
			for _, node := range c.Nodes {
				node := node
				for _, core := range cores {
					core := core
					c.K.Spawn("compute", func(p *sim.Proc) {
						r := kernels.LoopN(p, node, core, comp.Slice, iters)
						if node.ID == 0 {
							bwAlone = append(bwAlone, r.BytesPerSec)
							secsAlone = append(secsAlone, r.PerIter.Seconds())
						}
					})
				}
			}
			c.K.Run()
		}

		// Step 2: communication without computation.
		{
			c, w := newWorld(env, seed)
			pp := applyComm(w, comm)
			var lats []sim.Duration
			c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
			c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
			c.K.Run()
			for _, l := range lats {
				latAlone = append(latAlone, l.Seconds())
			}
		}

		// Step 3: computation with side-by-side communication.
		{
			c, w := newWorld(env, seed)
			pp := applyComm(w, comm)
			commDone := false
			cores := computeCores(env.Spec, comp.Cores, w.Rank(0).CommCore)
			for _, node := range c.Nodes {
				node := node
				for _, core := range cores {
					core := core
					c.K.Spawn("compute", func(p *sim.Proc) {
						r := kernels.LoopWhile(p, node, core, comp.Slice, func() bool { return !commDone })
						if node.ID == 0 && r.Iters > 0 {
							bwTogether = append(bwTogether, r.BytesPerSec)
							secsTogether = append(secsTogether, r.PerIter.Seconds())
						}
					})
				}
			}
			var lats []sim.Duration
			c.K.Spawn("init", func(p *sim.Proc) {
				// Let computation reach steady state before measuring.
				p.Sleep(sim.Duration(2 * sim.Millisecond))
				lats = pp.Initiate(p, w.Rank(0), 1)
				commDone = true
			})
			c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
			c.K.Run()
			for _, l := range lats {
				latTogether = append(latTogether, l.Seconds())
			}
		}
	}

	res.ComputeAlone = stats.SummarizeInPlace(bwAlone)
	res.ComputeTogether = stats.SummarizeInPlace(bwTogether)
	res.ComputeSecsAlone = stats.SummarizeInPlace(secsAlone)
	res.ComputeSecsTogether = stats.SummarizeInPlace(secsTogether)
	res.CommAlone = stats.SummarizeInPlace(latAlone)
	res.CommTogether = stats.SummarizeInPlace(latTogether)
	return res
}

// pickCommCore resolves the effective communication core for a config.
func pickCommCore(w *mpi.World, cc CommConfig) int {
	if cc.CommCore >= 0 {
		return cc.CommCore
	}
	return w.Rank(0).CommCore
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
