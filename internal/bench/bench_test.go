package bench

import (
	"testing"

	"repro/internal/topology"
)

// quietEnv returns a single-run, noise-free henri environment for fast
// deterministic shape tests.
func quietEnv() Env {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	return Env{Spec: spec, Seed: 1, Runs: 1}
}

func TestInterferenceProtocolBaseline(t *testing.T) {
	// No computation: comm-alone and together must agree.
	r := Interference(quietEnv(), LatencyConfig(), ComputeConfig{})
	if r.CommAlone.N == 0 || r.CommTogether.N == 0 {
		t.Fatal("missing samples")
	}
	rel := r.CommTogether.Median / r.CommAlone.Median
	if rel < 0.95 || rel > 1.05 {
		t.Fatalf("no-compute latency drifted: alone %v together %v", r.CommAlone.Median, r.CommTogether.Median)
	}
}

func TestComputeCoresSkipCommCore(t *testing.T) {
	spec := topology.Henri()
	cores := computeCores(spec, 10, 3)
	for _, c := range cores {
		if c == 3 {
			t.Fatal("comm core used for computation")
		}
	}
	if len(cores) != 10 || cores[0] != 0 || cores[3] != 4 {
		t.Fatalf("cores %v", cores)
	}
}

func TestFig1LatencyOrdering(t *testing.T) {
	pts := Fig1Frequencies(quietEnv(), []int64{4})
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4 (2 core × 2 uncore)", len(pts))
	}
	byKey := map[[2]float64]FrequencyPoint{}
	for _, p := range pts {
		byKey[[2]float64{p.CoreGHz, p.UncoreGHz}] = p
	}
	lo := byKey[[2]float64{1.0, 2.4}].Latency.Median
	hi := byKey[[2]float64{2.3, 2.4}].Latency.Median
	if lo <= hi {
		t.Fatalf("latency at 1.0GHz (%v) not above 2.3GHz (%v)", lo, hi)
	}
	// Paper: 1.8µs at 2300 MHz, 3.1µs at 1000 MHz (+72%); uncore effect
	// comparatively negligible (+5%).
	ratio := lo / hi
	if ratio < 1.4 || ratio > 2.1 {
		t.Fatalf("core-frequency latency ratio %.2f, want ≈1.7", ratio)
	}
	uncoreRatio := byKey[[2]float64{2.3, 1.2}].Latency.Median / hi
	if uncoreRatio < 1.0 || uncoreRatio > 1.15 {
		t.Fatalf("uncore latency ratio %.3f, want small (≈1.05)", uncoreRatio)
	}
	if uncoreRatio >= ratio {
		t.Fatal("uncore impact not smaller than core impact")
	}
}

func TestFig1BandwidthUncoreEffect(t *testing.T) {
	pts := Fig1Frequencies(quietEnv(), []int64{64 << 20})
	byKey := map[[2]float64]FrequencyPoint{}
	for _, p := range pts {
		byKey[[2]float64{p.CoreGHz, p.UncoreGHz}] = p
	}
	// Core frequency does not affect asymptotic bandwidth (DMA)...
	bwSlowCore := byKey[[2]float64{1.0, 2.4}].Bandwidth()
	bwFastCore := byKey[[2]float64{2.3, 2.4}].Bandwidth()
	if rel := bwSlowCore / bwFastCore; rel < 0.97 {
		t.Fatalf("core frequency changed asymptotic bandwidth: %.3f", rel)
	}
	// ...but a low uncore slightly reduces it (10.5 vs 10.1 GB/s in the
	// paper: ≈4%).
	bwLowUncore := byKey[[2]float64{2.3, 1.2}].Bandwidth()
	if bwLowUncore >= bwFastCore {
		t.Fatal("low uncore did not reduce bandwidth")
	}
	if rel := bwLowUncore / bwFastCore; rel < 0.80 {
		t.Fatalf("uncore bandwidth penalty too strong: %.3f", rel)
	}
}

func TestFig2TracesAndMetrics(t *testing.T) {
	r := Fig2FrequencyTrace(quietEnv())
	if len(r.TraceA) == 0 || len(r.TraceB) == 0 || len(r.TraceC) == 0 {
		t.Fatal("missing traces")
	}
	// §3.2: latency slightly better with computation (1.52 vs 1.7 µs).
	if r.LatencyTogether.Median >= r.LatencyAlone.Median {
		t.Fatalf("latency with CPU-bound compute (%v) not below alone (%v)",
			r.LatencyTogether.Median, r.LatencyAlone.Median)
	}
	// Bandwidth essentially unchanged (9097 vs 9063 MB/s: ±1%).
	rel := r.BandwidthTogether / r.BandwidthAlone
	if rel < 0.97 || rel > 1.06 {
		t.Fatalf("CPU-bound compute changed bandwidth by %.3f", rel)
	}
	// Case C: 20 computing cores hold a steady frequency above idle.
	maxC := 0.0
	for _, s := range r.TraceC {
		if s.Core >= 0 && s.GHz > maxC {
			maxC = s.GHz
		}
	}
	if maxC < 2.4 {
		t.Fatalf("no core reached turbo in case C (max %.2f GHz)", maxC)
	}
}

func TestFig3AVXShape(t *testing.T) {
	rs := Fig3AVX(quietEnv(), []int{4, 20})
	if len(rs) != 2 {
		t.Fatal("want 2 configurations")
	}
	four, twenty := rs[0], rs[1]
	// Fig 3b/3c: compute cores at 3.0 GHz with 4 cores, 2.3 with 20;
	// comm core stable at 2.5 GHz in both.
	if four.ComputeCoreGHz != 3.0 || twenty.ComputeCoreGHz != 2.3 {
		t.Fatalf("compute core GHz: 4→%v 20→%v, want 3.0/2.3", four.ComputeCoreGHz, twenty.ComputeCoreGHz)
	}
	if four.CommCoreGHz != 2.5 || twenty.CommCoreGHz != 2.5 {
		t.Fatalf("comm core GHz: %v/%v, want 2.5", four.CommCoreGHz, twenty.CommCoreGHz)
	}
	// Weak scaling: computations slower with 20 cores (licence drop).
	if twenty.ComputeSecsWith.Median <= four.ComputeSecsWith.Median {
		t.Fatal("20-core AVX512 compute not slower than 4-core")
	}
	// Latency always slightly better when computations run at the same
	// time (1.33 vs 1.49 µs), for any core count.
	for _, r := range rs {
		if r.LatencyWith.Median >= r.LatencyAlone.Median {
			t.Fatalf("cores=%d: AVX latency with compute (%v) not below alone (%v)",
				r.Cores, r.LatencyWith.Median, r.LatencyAlone.Median)
		}
	}
}

func TestFig4ContentionShape(t *testing.T) {
	pts := Fig4Contention(quietEnv(), ContentionConfig{
		Data: Near, CommThread: Far,
		CoreCounts: []int{1, 5, 20, 35},
	})
	byCores := map[int]ContentionPoint{}
	for _, p := range pts {
		byCores[p.Cores] = p
	}
	// Latency: unaffected at low core counts, roughly doubled at 35
	// (Fig 4a: impact from ≥22 cores, up to 2×).
	lat1 := byCores[1].Latency
	lat35 := byCores[35].Latency
	if r := lat1.CommTogether.Median / lat1.CommAlone.Median; r > 1.2 {
		t.Fatalf("1-core latency already impacted: %.2f×", r)
	}
	r35 := lat35.CommTogether.Median / lat35.CommAlone.Median
	if r35 < 1.5 || r35 > 3.0 {
		t.Fatalf("35-core latency factor %.2f, want ≈2", r35)
	}
	// Bandwidth: reduced by roughly two thirds at 35 cores (Fig 4b).
	bw35 := byCores[35].Bandwidth
	drop := 1 - bw35.BandwidthTogether()/bw35.BandwidthAlone()
	if drop < 0.5 || drop > 0.85 {
		t.Fatalf("35-core bandwidth drop %.2f, want ≈0.65", drop)
	}
	// STREAM is not impacted by the latency ping-pong (4-byte messages)…
	if alone, with := lat35.ComputeAlone.Median, lat35.ComputeTogether.Median; with < 0.93*alone {
		t.Fatalf("STREAM hurt by latency ping-pong: %.3g → %.3g", alone, with)
	}
	// …but is impacted by the bandwidth ping-pong, worst at ≈5 cores
	// (≤25% loss, §4.3).
	bw5 := byCores[5].Bandwidth
	loss5 := 1 - bw5.ComputeTogether.Median/bw5.ComputeAlone.Median
	if loss5 < 0.05 || loss5 > 0.40 {
		t.Fatalf("5-core STREAM loss beside bandwidth ping-pong %.2f, want ≈0.25", loss5)
	}
}

func TestFig5PlacementAndTable1(t *testing.T) {
	series := Fig5Placement(quietEnv(), []int{5, 35})
	if len(series) != 4 {
		t.Fatalf("%d placements", len(series))
	}
	rows := Table1(series)
	if len(rows) != 4 {
		t.Fatalf("%d table rows", len(rows))
	}
	get := func(data, thread Placement) Table1Row {
		for _, r := range rows {
			if r.Data == data && r.CommThread == thread {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", data, thread)
		return Table1Row{}
	}
	// Far comm thread: latency increases highly; near: only slightly.
	if !(get(Near, Far).LatencyIncrease > get(Near, Near).LatencyIncrease) {
		t.Fatal("far thread latency increase not above near thread")
	}
	// Far data: bandwidth drops more than near data (thread near).
	if !(get(Far, Near).BandwidthDropFrac > get(Near, Near).BandwidthDropFrac-0.05) {
		t.Fatalf("far data bandwidth drop %.2f not ≥ near data %.2f",
			get(Far, Near).BandwidthDropFrac, get(Near, Near).BandwidthDropFrac)
	}
}

func TestFig6MessageSizeShape(t *testing.T) {
	sizes := []int64{4, 4 << 10, 64 << 10, 1 << 20, 64 << 20}
	five := Fig6MessageSize(quietEnv(), 5, sizes)
	thirty5 := Fig6MessageSize(quietEnv(), 35, sizes)
	at := func(pts []SizePoint, size int64) InterferenceResult {
		for _, p := range pts {
			if p.Size == size {
				return p.Result
			}
		}
		t.Fatalf("missing size %d", size)
		return InterferenceResult{}
	}
	// With 5 cores: tiny messages unaffected, 64 MB affected.
	small5 := at(five, 4)
	if r := small5.CommTogether.Median / small5.CommAlone.Median; r > 1.25 {
		t.Fatalf("5 cores: 4B latency impacted %.2f×", r)
	}
	big5 := at(five, 64<<20)
	if r := big5.BandwidthTogether() / big5.BandwidthAlone(); r > 0.95 {
		t.Fatalf("5 cores: 64MB bandwidth unaffected (%.2f)", r)
	}
	// With 35 cores: even small messages suffer (paper: from 128 B).
	small35 := at(thirty5, 4)
	if r := small35.CommTogether.Median / small35.CommAlone.Median; r < 1.3 {
		t.Fatalf("35 cores: 4B latency not impacted (%.2f×)", r)
	}
	// STREAM impacted by ≥4KB messages more than by 4B ones (5 cores).
	loss := func(r InterferenceResult) float64 {
		if r.ComputeAlone.Median == 0 {
			return 0
		}
		return 1 - r.ComputeTogether.Median/r.ComputeAlone.Median
	}
	if !(loss(at(five, 64<<20)) > loss(at(five, 4))+0.02) {
		t.Fatalf("STREAM loss not growing with message size: 4B %.3f vs 64MB %.3f",
			loss(at(five, 4)), loss(at(five, 64<<20)))
	}
}

func TestFig7IntensityShape(t *testing.T) {
	pts := Fig7Intensity(quietEnv(), 35, []int{1, 24, 72, 288, 1200})
	first, last := pts[0], pts[len(pts)-1]
	// Memory-bound end: bandwidth drops hard (paper: −60%).
	dropLow := 1 - first.Bandwidth.BandwidthTogether()/first.Bandwidth.BandwidthAlone()
	if dropLow < 0.35 {
		t.Fatalf("low-AI bandwidth drop %.2f, want ≥0.35 (paper 0.6)", dropLow)
	}
	// CPU-bound end: communication recovers to nominal.
	dropHigh := 1 - last.Bandwidth.BandwidthTogether()/last.Bandwidth.BandwidthAlone()
	if dropHigh > 0.10 {
		t.Fatalf("high-AI bandwidth drop %.2f, want ≈0", dropHigh)
	}
	// Latency doubles at low AI, recovers at high AI.
	rLow := first.Latency.CommTogether.Median / first.Latency.CommAlone.Median
	rHigh := last.Latency.CommTogether.Median / last.Latency.CommAlone.Median
	if rLow < 1.4 {
		t.Fatalf("low-AI latency factor %.2f, want ≈2", rLow)
	}
	if rHigh > 1.15 {
		t.Fatalf("high-AI latency factor %.2f, want ≈1", rHigh)
	}
	// The transition must be monotone-ish in between.
	if !(pts[1].Bandwidth.BandwidthTogether() <= pts[3].Bandwidth.BandwidthTogether()) {
		t.Fatal("bandwidth not recovering with intensity")
	}
}

func TestRuntimeOverheadAcrossClusters(t *testing.T) {
	// §5.2: +38 µs on henri, +23 µs on billy, +45 µs on pyxis.
	for _, tc := range []struct {
		spec   *topology.NodeSpec
		lo, hi float64 // microseconds
	}{
		{topology.Henri(), 28, 48},
		{topology.Billy(), 15, 33},
		{topology.Pyxis(), 33, 58},
	} {
		tc.spec.NIC.NoiseFrac = 0
		env := Env{Spec: tc.spec, Seed: 1, Runs: 1}
		r := RuntimeOverhead(env)
		us := r.OverheadSeconds * 1e6
		if us < tc.lo || us > tc.hi {
			t.Errorf("%s: runtime overhead %.1fµs, want in [%v,%v]", tc.spec.Name, us, tc.lo, tc.hi)
		}
	}
}

func TestFig8RuntimePlacement(t *testing.T) {
	pts := Fig8Runtime(quietEnv())
	if len(pts) != 4 {
		t.Fatalf("%d placements", len(pts))
	}
	get := func(dataClose, threadClose bool) float64 {
		for _, p := range pts {
			if p.DataClose == dataClose && p.ThreadClose == threadClose {
				return p.Latency.Median
			}
		}
		t.Fatal("missing placement")
		return 0
	}
	// Fig 8: co-location of data and comm thread matters most.
	split1 := get(true, false)
	split2 := get(false, true)
	together := get(true, true)
	togetherFar := get(false, false)
	if !(split1 > together && split2 > together) {
		t.Fatalf("split placements (%v, %v) not slower than co-located (%v)", split1, split2, together)
	}
	if !(togetherFar < split1 && togetherFar < split2) {
		t.Fatalf("co-located-far (%v) not faster than splits (%v, %v)", togetherFar, split1, split2)
	}
}

func TestFig9PollingShape(t *testing.T) {
	pts := Fig9Polling(quietEnv())
	byLabel := map[string]float64{}
	for _, p := range pts {
		byLabel[p.Label] = p.Latency.Median
	}
	if !(byLabel["backoff-2"] >= byLabel["default-32"]) {
		t.Fatalf("more polling not slower: %v", byLabel)
	}
	if !(byLabel["default-32"] > byLabel["paused"]) {
		t.Fatalf("default polling not above paused: %v", byLabel)
	}
	// Rare polling ≈ paused.
	if byLabel["backoff-10000"] > byLabel["paused"]*1.2 {
		t.Fatalf("rare polling too far from paused: %v", byLabel)
	}
}

func TestFig10KernelShape(t *testing.T) {
	pts := Fig10Kernels(quietEnv(), []int{2, 16, 34})
	get := func(kernel string, workers int) Fig10Point {
		for _, p := range pts {
			if p.Kernel == kernel && p.Workers == workers {
				return p
			}
		}
		t.Fatalf("missing %s/%d", kernel, workers)
		return Fig10Point{}
	}
	// Memory stalls grow with workers, CG far above GEMM at full load.
	cgFull, gemmFull := get("cg", 34), get("gemm", 34)
	if cgFull.StallFraction < 0.5 || cgFull.StallFraction > 0.95 {
		t.Fatalf("CG stall fraction %.2f, want ≈0.7", cgFull.StallFraction)
	}
	if gemmFull.StallFraction > 0.45 {
		t.Fatalf("GEMM stall fraction %.2f, want ≈0.2", gemmFull.StallFraction)
	}
	// Sending bandwidth degrades with workers, CG worse than GEMM.
	cgDrop := 1 - cgFull.SendBandwidth/get("cg", 2).SendBandwidth
	gemmDrop := 1 - gemmFull.SendBandwidth/get("gemm", 2).SendBandwidth
	if cgDrop <= gemmDrop {
		t.Fatalf("CG send-bandwidth drop (%.2f) not above GEMM's (%.2f)", cgDrop, gemmDrop)
	}
	if cgDrop < 0.4 {
		t.Fatalf("CG send-bandwidth drop %.2f, want large (paper: up to 0.9)", cgDrop)
	}
	if gemmDrop > 0.5 {
		t.Fatalf("GEMM send-bandwidth drop %.2f, want moderate (paper: ≤0.2)", gemmDrop)
	}
}
