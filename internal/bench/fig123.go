package bench

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// FrequencyPoint is one cell of Figure 1's grid.
type FrequencyPoint struct {
	CoreGHz, UncoreGHz float64
	Size               int64
	Latency            stats.Summary // seconds
}

// Bandwidth returns the NetPIPE bandwidth of the point in bytes/s.
func (p FrequencyPoint) Bandwidth() float64 {
	if p.Latency.Median == 0 {
		return 0
	}
	return float64(p.Size) / p.Latency.Median
}

// Fig1Frequencies measures network latency and bandwidth at the
// extremes of the permitted core and uncore frequency ranges (§3.1,
// Figs 1a/1b): constant frequencies via the userspace governor and a
// pinned uncore, ping-pong only, no computation, communication thread
// near the NIC.
func Fig1Frequencies(env Env, sizes []int64) []FrequencyPoint {
	if len(sizes) == 0 {
		sizes = []int64{4, 64 << 20}
	}
	coreFreqs := []float64{env.Spec.Freq.CoreMin, env.Spec.Freq.CoreBase}
	uncoreFreqs := []float64{env.Spec.Freq.UncoreMin, env.Spec.Freq.UncoreMax}
	var pts []Point
	for _, cf := range coreFreqs {
		for _, uf := range uncoreFreqs {
			for _, size := range sizes {
				cf, uf, size := cf, uf, size
				pts = append(pts, Point{
					Key: fmt.Sprintf("fig1/cf=%g/uf=%g/size=%d", cf, uf, size),
					Fn: func(env Env) any {
						spec := env.Spec
						lats := make([]float64, 0, env.runs()*pingIters(size))
						for run := 0; run < env.runs(); run++ {
							c, w := newWorld(env, env.Seed+int64(run))
							for i := 0; i < 2; i++ {
								r := w.Rank(i)
								r.SetCommCore(spec.LastCoreOfNUMA(spec.NIC.NUMA))
								r.Node.Freq.SetUserspace(cf)
								r.Node.Freq.SetUncoreFixed(uf)
							}
							pp := applyComm(w, CommConfig{CommCore: -1, BufNUMA: -1, Size: size,
								Iters: pingIters(size), Warmup: 2})
							pp.InitBuf = w.Rank(0).Node.Alloc(maxInt64(size, 1), spec.NIC.NUMA)
							pp.RespBuf = w.Rank(1).Node.Alloc(maxInt64(size, 1), spec.NIC.NUMA)
							var ls []sim.Duration
							c.K.Spawn("init", func(p *sim.Proc) { ls = pp.Initiate(p, w.Rank(0), 1) })
							c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
							c.K.Run()
							for _, l := range ls {
								lats = append(lats, l.Seconds())
							}
						}
						return FrequencyPoint{
							CoreGHz: cf, UncoreGHz: uf, Size: size,
							Latency: stats.SummarizeInPlace(lats),
						}
					},
				})
			}
		}
	}
	return RunPointsAs[FrequencyPoint](env, pts)
}

// pingIters scales the iteration count down for huge messages.
func pingIters(size int64) int {
	switch {
	case size >= 16<<20:
		return 5
	case size >= 1<<20:
		return 10
	default:
		return 25
	}
}

// Fig1Table renders Figure 1 as a table.
func Fig1Table(points []FrequencyPoint) *trace.Table {
	t := trace.NewTable("Fig 1 — impact of constant frequencies on network performance",
		"core_GHz", "uncore_GHz", "size_B", "latency_us", "bandwidth_MBps")
	for _, p := range points {
		t.Add(p.CoreGHz, p.UncoreGHz, p.Size, p.Latency.Median*1e6, p.Bandwidth()/1e6)
	}
	return t
}

// Fig2Result holds the three frequency traces of Figure 2 plus the
// communication metrics with and without computation (§3.2).
type Fig2Result struct {
	// Traces: (A) communication only, (B) idle, (C) communication with
	// 20 CPU-bound computing cores.
	TraceA, TraceB, TraceC []freq.Sample
	// Latency/Bandwidth medians, alone (A) vs with computation (C).
	LatencyAlone, LatencyTogether     stats.Summary
	BandwidthAlone, BandwidthTogether float64
	// ComputeSecs is the compute iteration time in case C (constant
	// regardless of core count, §3.2 footnote 4).
	ComputeSecs stats.Summary
}

// Fig2FrequencyTrace reproduces Figure 2: per-core frequency traces
// under the performance governor with turbo, for communication only,
// idle, and communication beside 20 prime-counting cores.
func Fig2FrequencyTrace(env Env) Fig2Result {
	var res Fig2Result
	spec := env.Spec

	// (A) communication only: latency benchmark, trace frequencies.
	{
		c, w := newWorld(env, env.Seed)
		pp := applyComm(w, CommConfig{CommCore: -1, BufNUMA: -1, Size: 4, Iters: 30, Warmup: 5})
		w.Rank(0).Node.Freq.StartTrace()
		var lats []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		res.TraceA = w.Rank(0).Node.Freq.StopTrace()
		res.LatencyAlone = summarizeDur(lats)
		res.BandwidthAlone = measureBandwidthOnce(env, 0)
	}

	// (B) idle: all cores asleep.
	{
		c, w := newWorld(env, env.Seed)
		n := w.Rank(0).Node
		n.Freq.StartTrace()
		c.K.Spawn("sleep", func(p *sim.Proc) { p.Sleep(sim.Duration(10 * sim.Millisecond)) })
		c.K.Run()
		res.TraceB = n.Freq.StopTrace()
	}

	// (C) communication + 20 computing cores.
	{
		c, w := newWorld(env, env.Seed)
		pp := applyComm(w, CommConfig{CommCore: -1, BufNUMA: -1, Size: 4, Iters: 30, Warmup: 5})
		n := w.Rank(0).Node
		n.Freq.StartTrace()
		commDone := false
		var secs []float64
		for _, node := range c.Nodes {
			node := node
			for _, core := range computeCores(spec, 20, w.Rank(0).CommCore) {
				core := core
				c.K.Spawn("prime", func(p *sim.Proc) {
					r := kernels.LoopWhile(p, node, core, kernels.PrimeCountDefault(),
						func() bool { return !commDone })
					if node.ID == 0 && r.Iters > 0 {
						secs = append(secs, r.PerIter.Seconds())
					}
				})
			}
		}
		var lats []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) {
			p.Sleep(sim.Duration(sim.Millisecond))
			lats = pp.Initiate(p, w.Rank(0), 1)
			commDone = true
		})
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		res.TraceC = n.Freq.StopTrace()
		res.LatencyTogether = summarizeDur(lats)
		res.ComputeSecs = stats.Summarize(secs)
		res.BandwidthTogether = measureBandwidthOnce(env, 20)
	}
	return res
}

// measureBandwidthOnce runs one 64MB ping-pong (optionally beside a
// CPU-bound kernel on `cores` cores) and returns the median bandwidth.
func measureBandwidthOnce(env Env, cores int) float64 {
	comm := BandwidthConfig()
	comp := ComputeConfig{}
	if cores > 0 {
		comp = ComputeConfig{Slice: kernels.PrimeCountDefault(), Cores: cores}
	}
	r := Interference(Env{Spec: env.Spec, Seed: env.Seed, Runs: 1}, comm, comp)
	if cores > 0 {
		return r.BandwidthTogether()
	}
	return r.BandwidthAlone()
}

// Fig3Result holds one AVX-512 configuration of Figure 3.
type Fig3Result struct {
	Cores                             int
	ComputeSecsAlone, ComputeSecsWith stats.Summary
	LatencyAlone, LatencyWith         stats.Summary
	// CommCoreGHz and ComputeCoreGHz are the frequencies observed during
	// the side-by-side phase.
	CommCoreGHz, ComputeCoreGHz float64
}

// Fig3AVX reproduces Figure 3: AVX-512 computations with turbo enabled
// beside a latency ping-pong, for the given computing-core counts
// (the paper shows 4 and 20).
func Fig3AVX(env Env, coreCounts []int) []Fig3Result {
	if len(coreCounts) == 0 {
		coreCounts = []int{4, 20}
	}
	var pts []Point
	for _, nc := range coreCounts {
		nc := nc
		pts = append(pts, Point{
			Key: fmt.Sprintf("fig3/avx512-default/cores=%d", nc),
			Fn: func(env Env) any {
				r := Interference(env, LatencyConfig(), ComputeConfig{
					Slice: kernels.AVX512Default(), Cores: nc, MinIters: 2,
				})
				fr := Fig3Result{
					Cores:            nc,
					ComputeSecsAlone: r.ComputeSecsAlone,
					ComputeSecsWith:  r.ComputeSecsTogether,
					LatencyAlone:     r.CommAlone,
					LatencyWith:      r.CommTogether,
				}
				// Probe the frequencies in the side-by-side state.
				c, w := newWorld(env, env.Seed)
				n := w.Rank(0).Node
				for _, core := range computeCores(env.Spec, nc, w.Rank(0).CommCore) {
					n.Freq.SetActive(core, topology.AVX512)
				}
				n.Freq.SetActive(w.Rank(0).CommCore, topology.Scalar)
				fr.ComputeCoreGHz = n.Freq.CoreGHz(computeCores(env.Spec, nc, w.Rank(0).CommCore)[0])
				fr.CommCoreGHz = n.Freq.CoreGHz(w.Rank(0).CommCore)
				_ = c
				return fr
			},
		})
	}
	return RunPointsAs[Fig3Result](env, pts)
}

// Fig3Table renders Figure 3 as a table.
func Fig3Table(rs []Fig3Result) *trace.Table {
	t := trace.NewTable("Fig 3 — impact of AVX-512 computations on network latency (turbo on)",
		"cores", "compute_ms_alone", "compute_ms_with_comm",
		"latency_us_alone", "latency_us_with_compute",
		"compute_core_GHz", "comm_core_GHz")
	for _, r := range rs {
		t.Add(r.Cores, r.ComputeSecsAlone.Median*1e3, r.ComputeSecsWith.Median*1e3,
			r.LatencyAlone.Median*1e6, r.LatencyWith.Median*1e6,
			r.ComputeCoreGHz, r.CommCoreGHz)
	}
	return t
}

func summarizeDur(ds []sim.Duration) stats.Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return stats.Summarize(xs)
}
