package bench

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// This file implements the `faults` experiment family: the paper's
// ping-pong and overlap benchmarks re-run under deterministic fault
// schedules, showing how latency, bandwidth and overlap degrade as the
// fabric misbehaves — and how much recovery work (retransmissions,
// timeouts) the communication layer performs to hide it.

// FaultIntensitySchedule maps a scalar intensity x ∈ (0,1] onto a
// combined fault schedule active for the whole run: transmissions are
// dropped with probability x/2 and corrupted with probability x/4,
// while every wire runs at a (1 − x/2) capacity factor. Intensity 0
// returns nil — the healthy baseline.
func FaultIntensitySchedule(x float64) *fault.Schedule {
	if x <= 0 {
		return nil
	}
	// A rendezvous handshake needs both the RTS and the CTS to survive,
	// so at the top of the sweep (combined drop+corrupt probability
	// 0.45 per transmission) the default 8-retry budget would exhaust;
	// the sweep grants a deeper budget so every scenario completes and
	// the degradation shows up as latency, not as failed experiments.
	policy := fault.DefaultPolicy()
	policy.MaxRetries = 20
	return &fault.Schedule{
		Events: []fault.Event{
			{Kind: fault.PacketLoss, Prob: x / 2, Node: -1, From: -1, To: -1},
			{Kind: fault.PacketCorrupt, Prob: x / 4, Node: -1, From: -1, To: -1},
			{Kind: fault.LinkDegrade, Factor: 1 - x/2, Node: -1, From: -1, To: -1},
		},
		Policy: policy,
	}
}

// faultTotals sums the fault/recovery counters over a cluster's nodes.
func faultTotals(c *machine.Cluster) FaultTotals {
	var t FaultTotals
	for _, n := range c.Nodes {
		t.add(n.Counters)
	}
	return t
}

// runFaultPingPong runs the plain ping-pong (communication only) under
// the environment's schedule and returns the per-iteration latencies in
// seconds plus the aggregated recovery counters.
func runFaultPingPong(env Env, cc CommConfig) ([]float64, FaultTotals) {
	lats := make([]float64, 0, env.runs()*cc.Iters)
	var tot FaultTotals
	for run := 0; run < env.runs(); run++ {
		c, w := newWorld(env, env.Seed+int64(run))
		pp := applyComm(w, cc)
		var ls []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) { ls = pp.Initiate(p, w.Rank(0), 1) })
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		for _, l := range ls {
			lats = append(lats, l.Seconds())
		}
		tot.merge(faultTotals(c))
	}
	return lats, tot
}

// faultScenarios resolves the scenario list: a custom schedule from the
// environment (the -faults flag) runs alone, otherwise the default
// intensity sweep.
func faultScenarios(env Env) []struct {
	name  string
	sched *fault.Schedule
} {
	type sc = struct {
		name  string
		sched *fault.Schedule
	}
	if env.Faults != nil {
		return []sc{{"custom", env.Faults}}
	}
	var out []sc
	for _, x := range []float64{0, 0.1, 0.3, 0.6} {
		out = append(out, sc{fmt.Sprintf("intensity=%.1f", x), FaultIntensitySchedule(x)})
	}
	return out
}

// FaultsPingPong reports ping-pong latency (4 B) and bandwidth (64 MB)
// under increasing fault intensity, alongside the recovery work done:
// retransmissions, expired timeouts, and the transmissions the injector
// dropped or corrupted.
// faultsPPCell is the cached payload of one FaultsPingPong scenario.
type faultsPPCell struct {
	Scenario  string
	LatMedian float64
	BwBps     float64
	Retries   float64
	Timeouts  float64
	Lost      float64
	Corrupted float64
}

func FaultsPingPong(env Env) *trace.Table {
	var pts []Point
	for _, sc := range faultScenarios(env) {
		sc := sc
		pts = append(pts, Point{
			// Sound under a custom -faults schedule too: the campaign-level
			// cache key hashes the schedule, and a custom schedule replaces
			// the whole scenario sweep.
			Key: fmt.Sprintf("faults/pingpong/%s", sc.name),
			Fn: func(env Env) any {
				fenv := env
				fenv.Faults = sc.sched
				lat, latTot := runFaultPingPong(fenv, LatencyConfig())
				bw, bwTot := runFaultPingPong(fenv, BandwidthConfig())
				latMed := stats.SummarizeInPlace(lat).Median
				bwMed := stats.SummarizeInPlace(bw).Median
				var bwBps float64
				if bwMed > 0 {
					bwBps = float64(BandwidthConfig().Size) / bwMed
				}
				return faultsPPCell{
					Scenario:  sc.name,
					LatMedian: latMed,
					BwBps:     bwBps,
					Retries:   latTot.SendRetries + bwTot.SendRetries,
					Timeouts:  latTot.SendTimeouts + bwTot.SendTimeouts,
					Lost:      latTot.MsgsLost + bwTot.MsgsLost,
					Corrupted: latTot.MsgsCorrupted + bwTot.MsgsCorrupted,
				}
			},
		})
	}
	t := trace.NewTable("FAULTS — ping-pong under fault injection (loss + corruption + degraded wires)",
		"scenario", "latency_us", "bandwidth_MBps", "send_retries", "send_timeouts", "msgs_lost", "msgs_corrupted")
	for _, cell := range RunPointsAs[faultsPPCell](env, pts) {
		t.Add(cell.Scenario, cell.LatMedian*1e6, cell.BwBps/1e6,
			cell.Retries, cell.Timeouts, cell.Lost, cell.Corrupted)
	}
	return t
}

// FaultsOverlap reports the communication/computation overlap benchmark
// (after reference [7]) under targeted fault scenarios: degraded wires
// stretch the communication phase, a NIC stall freezes it outright, and
// straggler cores stretch the computation phase — each shifting which
// side of the overlap hides the other.
func FaultsOverlap(env Env) *trace.Table {
	t := trace.NewTable("FAULTS — communication/computation overlap under faults",
		"scenario", "comm_alone_us", "compute_alone_us", "together_us", "overlap_ratio")
	type sc = struct {
		name  string
		sched *fault.Schedule
	}
	stall := fault.Event{Kind: fault.NICStall, Node: -1, From: -1, To: -1,
		At: 2 * sim.Millisecond, For: 3 * sim.Millisecond}
	straggle := fault.Event{Kind: fault.Straggler, Node: -1, From: -1, To: -1, Factor: 2}
	scenarios := []sc{
		{"none", nil},
		{"degrade-50%", &fault.Schedule{Events: []fault.Event{
			{Kind: fault.LinkDegrade, Factor: 0.5, Node: -1, From: -1, To: -1}}}},
		{"nic-stall-3ms", &fault.Schedule{Events: []fault.Event{stall}}},
		{"straggler-2x", &fault.Schedule{Events: []fault.Event{straggle}}},
		{"stall+straggler", &fault.Schedule{Events: []fault.Event{stall, straggle}}},
	}
	if env.Faults != nil {
		scenarios = []sc{{"custom", env.Faults}}
	}
	const size = 16 << 20
	type overlapCell struct {
		Scenario string
		Res      mpi.OverlapResult
	}
	pts := make([]Point, 0, len(scenarios))
	for _, s := range scenarios {
		s := s
		pts = append(pts, Point{
			Key: fmt.Sprintf("faults/overlap/%s", s.name),
			Fn: func(env Env) any {
				fenv := env
				fenv.Faults = s.sched
				c, w := newWorld(fenv, fenv.Seed)
				transferSecs := float64(size) / (env.Spec.NIC.WireGBs * 1e9)
				flops := transferSecs * 2.5e9 * env.Spec.FlopsPerCycle[topology.Scalar]
				ov := &mpi.Overlap{
					Size:        size,
					Compute:     machine.ComputeSpec{Flops: flops, Class: topology.Scalar},
					ComputeCore: 1,
					Iters:       4,
				}
				var res mpi.OverlapResult
				c.K.Spawn("overlap", func(p *sim.Proc) { res = ov.Run(p, w.Rank(0), 1) })
				c.K.Spawn("peer", func(p *sim.Proc) { ov.RunPeer(p, w.Rank(1), 0) })
				c.K.Run()
				return overlapCell{Scenario: s.name, Res: res}
			},
		})
	}
	for _, cell := range RunPointsAs[overlapCell](env, pts) {
		t.Add(cell.Scenario, cell.Res.CommAlone.Micros(), cell.Res.ComputeAlone.Micros(),
			cell.Res.Together.Micros(), cell.Res.Ratio)
	}
	return t
}
