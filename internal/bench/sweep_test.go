package bench

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/kernels"
)

// TestExecutePointIsolation: a point mutating its spec must not leak the
// mutation into the caller's environment.
func TestExecutePointIsolation(t *testing.T) {
	env := quietEnv()
	want := env.Spec.Cores()
	rec := ExecutePoint(env, Point{Key: "t/mutate", Fn: func(e Env) any {
		e.Spec.CoresPerNUMA = 1
		return struct{ X int }{1}
	}})
	if rec.Panic != nil {
		t.Fatalf("panic: %v", rec.Panic)
	}
	if env.Spec.Cores() != want {
		t.Fatal("point mutated the caller's spec")
	}
}

// TestExecutePointCapturesPanic: a panicking Fn yields a record carrying
// the panic value instead of unwinding the executor.
func TestExecutePointCapturesPanic(t *testing.T) {
	rec := ExecutePoint(quietEnv(), Point{Key: "t/panic", Fn: func(Env) any {
		panic("boom")
	}})
	if rec.Panic != "boom" {
		t.Fatalf("Panic = %v, want boom", rec.Panic)
	}
	if rec.Payload != nil {
		t.Fatal("panicked record has a payload")
	}
}

// TestExecutePointRejectsNaN: results that cannot survive a JSON
// round-trip are turned into captured panics, not silent corruption.
func TestExecutePointRejectsNaN(t *testing.T) {
	rec := ExecutePoint(quietEnv(), Point{Key: "t/nan", Fn: func(Env) any {
		return struct{ V float64 }{math.NaN()}
	}})
	s, ok := rec.Panic.(string)
	if !ok || !strings.Contains(s, "not JSON-encodable") {
		t.Fatalf("Panic = %v, want a JSON-encodability error", rec.Panic)
	}
}

// TestRunPointsAsRepanicsInOwner: RunPointsAs re-raises a captured point
// panic on the calling goroutine.
func TestRunPointsAsRepanicsInOwner(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
	}()
	RunPointsAs[struct{}](quietEnv(), []Point{
		{Key: "t/panic", Fn: func(Env) any { panic("boom") }},
	})
	t.Fatal("no panic")
}

// TestRunPointsAsAbsorbsMeter: the owner's meter must account for every
// point's simulated work exactly as a direct serial run would.
func TestRunPointsAsAbsorbsMeter(t *testing.T) {
	direct := quietEnv().Isolated()
	Interference(direct, LatencyConfig(), ComputeConfig{})

	swept := quietEnv().Isolated()
	pts := []Point{{Key: "t/interference", Fn: func(e Env) any {
		return Interference(e, LatencyConfig(), ComputeConfig{})
	}}}
	RunPointsAs[InterferenceResult](swept, pts)

	if swept.Meter.Worlds() != direct.Meter.Worlds() {
		t.Fatalf("worlds: swept %d, direct %d", swept.Meter.Worlds(), direct.Meter.Worlds())
	}
	if s, d := swept.Meter.SimSeconds(), direct.Meter.SimSeconds(); s != d {
		t.Fatalf("sim seconds: swept %v, direct %v", s, d)
	}
}

// TestRunPointsAsMatchesDirectCall: the JSON round-trip that
// canonicalises point results must be lossless for the drivers' result
// types (Go float64 JSON encoding round-trips bit-exactly).
func TestRunPointsAsMatchesDirectCall(t *testing.T) {
	direct := Interference(quietEnv().Isolated(), LatencyConfig(), ComputeConfig{})
	got := RunPointsAs[InterferenceResult](quietEnv().Isolated(), []Point{
		{Key: "t/interference", Fn: func(e Env) any {
			return Interference(e, LatencyConfig(), ComputeConfig{})
		}},
	})
	if !reflect.DeepEqual(got[0], direct) {
		t.Fatalf("round-trip drift:\n swept %+v\ndirect %+v", got[0], direct)
	}
}

// recordingRunner proves RunPointsAs routes through Env.Sched and keeps
// index alignment regardless of the runner's execution order.
type recordingRunner struct{ keys []string }

func (r *recordingRunner) RunPoints(env Env, pts []Point) []PointRecord {
	recs := make([]PointRecord, len(pts))
	// Execute in reverse to prove the caller's decode is index-ordered.
	for i := len(pts) - 1; i >= 0; i-- {
		r.keys = append(r.keys, pts[i].Key)
		recs[i] = ExecutePoint(env, pts[i])
	}
	return recs
}

func TestRunPointsAsUsesScheduler(t *testing.T) {
	env := quietEnv()
	rr := &recordingRunner{}
	env.Sched = rr
	pts := make([]Point, 4)
	for i := range pts {
		i := i
		pts[i] = Point{Key: fmt.Sprintf("t/cell/%d", i), Fn: func(Env) any {
			return struct{ I int }{i}
		}}
	}
	out := RunPointsAs[struct{ I int }](env, pts)
	if len(rr.keys) != 4 {
		t.Fatalf("scheduler saw %d points", len(rr.keys))
	}
	for i, v := range out {
		if v.I != i {
			t.Fatalf("index %d decoded %d: merge not index-aligned", i, v.I)
		}
	}
}

// TestExecutePointRunsNestedSweepsInline: a sweep nested inside a point
// (e.g. the ablation's inner contention sweep) must not re-enter the
// campaign scheduler.
func TestExecutePointRunsNestedSweepsInline(t *testing.T) {
	env := quietEnv()
	env.Sched = &recordingRunner{} // would be observed by a nested sweep
	rec := ExecutePoint(env, Point{Key: "t/nested", Fn: func(e Env) any {
		if e.Sched != nil {
			t.Error("nested point sees the campaign scheduler")
		}
		return struct{}{}
	}})
	if rec.Panic != nil {
		t.Fatalf("panic: %v", rec.Panic)
	}
}

// BenchmarkInterferencePoint measures the hot measurement path of every
// sweep cell — Interference with its preallocated accumulators — so
// allocation regressions in the per-point loop surface here.
func BenchmarkInterferencePoint(b *testing.B) {
	env := quietEnv()
	comm := LatencyConfig()
	comm.Iters, comm.Warmup = 10, 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Interference(env.Isolated(), comm, ComputeConfig{})
	}
}

// BenchmarkExecutePoint measures the full point envelope: isolation,
// execution, and JSON canonicalisation of the record.
func BenchmarkExecutePoint(b *testing.B) {
	benchExecutePoint(b, ComputeConfig{})
}

// The per-kernel-family variants run the same envelope with each family
// of compute kernel alongside the ping-pong, so an allocation
// regression in one kernel's exec path (roofline accounting, stream
// census, placement) is attributed to its family instead of vanishing
// into the aggregate.
func BenchmarkExecutePointPingpong(b *testing.B) {
	benchExecutePoint(b, ComputeConfig{})
}

func BenchmarkExecutePointCG(b *testing.B) {
	benchExecutePoint(b, ComputeConfig{Slice: kernels.CGBlock(64, 64, -1), Cores: 3, MinIters: 2})
}

func BenchmarkExecutePointTriad(b *testing.B) {
	benchExecutePoint(b, ComputeConfig{Slice: kernels.StreamTriad(1<<14, 0), Cores: 2, MinIters: 2})
}

func benchExecutePoint(b *testing.B, comp ComputeConfig) {
	b.Helper()
	env := quietEnv()
	comm := LatencyConfig()
	comm.Iters, comm.Warmup = 10, 2
	p := Point{Key: "bench/interference", Fn: func(e Env) any {
		return Interference(e, comm, comp)
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := ExecutePoint(env, p)
		if rec.Panic != nil {
			b.Fatal(rec.Panic)
		}
	}
}
