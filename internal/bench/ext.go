package bench

// Extension experiments: working implementations of the paper's §8
// future-work proposals plus the reference-[7] overlap benchmark. These
// go beyond what the paper measures and are marked as extensions in the
// harness output and EXPERIMENTS.md.

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/taskrt"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/tuning"
)

// extCGApp is the memory-bound, communication-heavy application used by
// the extension experiments (a smaller cousin of the Fig 10 CG app).
func extCGApp(spec *topology.NodeSpec) func() *taskrt.App {
	return func() *taskrt.App {
		// Many small blocks keep the ready queue non-empty while the
		// boundary exchange is in flight, so communication-phase worker
		// throttling has work to defer.
		return &taskrt.App{
			Name: "ext-cg",
			Slice: func(i int) machine.ComputeSpec {
				return kernels.CGBlock(512, 1024, (i/2)%spec.NUMANodes())
			},
			TasksPerIter: 96,
			Iterations:   3,
			MsgSize:      512 << 10,
			MsgsPerIter:  6,
			HandleNUMA:   -1,
		}
	}
}

// ExtTuner sweeps worker counts for the CG-like application and renders
// the whole-program optimum (§8: "select automatically the optimal
// number of workers").
func ExtTuner(env Env) *trace.Table {
	// One sweep point per worker count; the optimum is re-derived from
	// the merged series exactly as tuning.WorkerSweep derives it (first
	// strict minimum of the whole-iteration time, in sweep order).
	counts := tuning.DefaultCounts(env.Spec)
	pts := make([]Point, 0, len(counts))
	for _, n := range counts {
		n := n
		pts = append(pts, Point{
			Key: fmt.Sprintf("ext/tuner/ext-cg/workers=%d", n),
			Fn: func(env Env) any {
				res := tuning.WorkerSweep(tuning.Options{
					Spec:         env.Spec,
					Track:        env.track,
					Seed:         env.Seed,
					App:          extCGApp(env.Spec),
					WorkerCounts: []int{n},
				})
				return res.Series[0]
			},
		})
	}
	series := RunPointsAs[tuning.Point](env, pts)
	var best tuning.Point
	for _, pt := range series {
		if best.Workers == 0 || pt.IterSeconds < best.IterSeconds {
			best = pt
		}
	}
	t := trace.NewTable("EXT — §8 worker-count autotuning on a CG-like application",
		"workers", "iteration_ms", "send_bandwidth_MBps", "memory_stall_%", "best")
	for _, pt := range series {
		label := ""
		if pt.Workers == best.Workers {
			label = "<== optimum"
		}
		t.Add(pt.Workers, pt.IterSeconds*1e3, pt.SendBandwidth/1e6, pt.StallFraction*100, label)
	}
	return t
}

// ExtThrottle compares communication-phase worker throttling levels
// (§8: "change dynamically the number of workers if there are
// identifiable communication phases").
func ExtThrottle(env Env) *trace.Table {
	throttles := []int{0, 8, 16, 24}
	pts := make([]Point, 0, len(throttles))
	for _, throttle := range throttles {
		throttle := throttle
		pts = append(pts, Point{
			Key: fmt.Sprintf("ext/throttle/ext-cg/workers=30/throttle=%d", throttle),
			Fn: func(env Env) any {
				res := tuning.WorkerSweep(tuning.Options{
					Spec:         env.Spec,
					Track:        env.track,
					Seed:         env.Seed,
					App:          extCGApp(env.Spec),
					WorkerCounts: []int{30},
					CommThrottle: throttle,
				})
				return res.Series[0]
			},
		})
	}
	t := trace.NewTable("EXT — §8 communication-phase worker throttling (30 workers, CG-like app)",
		"throttled_workers", "iteration_ms", "send_bandwidth_MBps", "memory_stall_%")
	for i, pt := range RunPointsAs[tuning.Point](env, pts) {
		t.Add(throttles[i], pt.IterSeconds*1e3, pt.SendBandwidth/1e6, pt.StallFraction*100)
	}
	return t
}

// ExtScheduler compares the central FIFO scheduler against the §8
// NUMA-local scheduler on a task-dominated, NUMA-spread workload.
func ExtScheduler(env Env) *trace.Table {
	spreadApp := func() *taskrt.App {
		return &taskrt.App{
			Name: "ext-spread",
			Slice: func(i int) machine.ComputeSpec {
				return kernels.CGBlock(1024, 1024, i%env.Spec.NUMANodes())
			},
			TasksPerIter: 90,
			Iterations:   2,
		}
	}
	policies := []taskrt.SchedulerPolicy{taskrt.EagerFIFO, taskrt.NUMALocal}
	pts := make([]Point, 0, len(policies))
	for _, pol := range policies {
		pol := pol
		pts = append(pts, Point{
			Key: fmt.Sprintf("ext/scheduler/ext-spread/workers=30/policy=%s", pol),
			Fn: func(env Env) any {
				res := tuning.WorkerSweep(tuning.Options{
					Spec:         env.Spec,
					Track:        env.track,
					Seed:         env.Seed,
					App:          spreadApp,
					WorkerCounts: []int{30},
					Scheduler:    pol,
				})
				return res.Series[0]
			},
		})
	}
	t := trace.NewTable("EXT — §8 NUMA-local task scheduling vs central FIFO (30 workers)",
		"scheduler", "iteration_ms", "memory_stall_%")
	for i, pt := range RunPointsAs[tuning.Point](env, pts) {
		t.Add(policies[i].String(), pt.IterSeconds*1e3, pt.StallFraction*100)
	}
	return t
}

// ExtOverlap measures communication/computation overlap ratios (after
// reference [7]) for a sweep of message sizes, with the computation
// scaled to roughly match each transfer time.
func ExtOverlap(env Env) *trace.Table {
	sizes := []int64{64 << 10, 1 << 20, 16 << 20, 64 << 20}
	pts := make([]Point, 0, len(sizes))
	for _, size := range sizes {
		size := size
		pts = append(pts, Point{
			Key: fmt.Sprintf("ext/overlap/size=%d", size),
			Fn: func(env Env) any {
				c, w := newWorld(env, env.Seed)
				// Computation sized to the nominal transfer time at wire speed.
				transferSecs := float64(size) / (env.Spec.NIC.WireGBs * 1e9)
				flops := transferSecs * 2.5e9 * env.Spec.FlopsPerCycle[topology.Scalar]
				ov := &mpi.Overlap{
					Size:        size,
					Compute:     machine.ComputeSpec{Flops: flops, Class: topology.Scalar},
					ComputeCore: 1,
					Iters:       4,
				}
				var res mpi.OverlapResult
				c.K.Spawn("overlap", func(p *sim.Proc) { res = ov.Run(p, w.Rank(0), 1) })
				c.K.Spawn("peer", func(p *sim.Proc) { ov.RunPeer(p, w.Rank(1), 0) })
				c.K.Run()
				return res
			},
		})
	}
	t := trace.NewTable("EXT — communication/computation overlap (after Denis & Trahay [7])",
		"size_B", "comm_alone_us", "compute_alone_us", "together_us", "overlap_ratio")
	for i, res := range RunPointsAs[mpi.OverlapResult](env, pts) {
		t.Add(sizes[i], res.CommAlone.Micros(), res.ComputeAlone.Micros(),
			res.Together.Micros(), res.Ratio)
	}
	return t
}
