// Package replica is the client-side availability layer over a set of
// interfd daemons: a health-gated replica picker, campaign submission
// with failover, hedged cache reads, and a token-bucket retry budget
// shared across submission and cache traffic.
//
// The design leans on the property that makes failover uniquely cheap
// here: every sweep point is deterministic and content-addressed, so a
// campaign resubmitted to a second replica re-hits the shared result
// cache instead of recomputing — replay-from-cheap-state rather than
// expensive recovery. What the package must guard against is therefore
// not wasted compute but *retry storms*: a dying replica turning every
// client into a tight resubmission loop. The shared Budget bounds the
// total retry volume; health gating and Retry-After honoring shape
// what remains.
package replica

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// Budget is a token-bucket retry budget. Every retry — a resubmitted
// campaign, a failed-over cache read, a hedged GET — must first win a
// token; first attempts are free. The bucket starts full and refills
// continuously, so a brief blip retries immediately while a dead
// replica drains the bucket once and then fails fast instead of
// stampeding the survivors. One Budget is shared by a Set and every
// Cache built on it, implementing server.RetryBudget.
type Budget struct {
	mu     sync.Mutex
	clock  chaos.Clock
	cap    float64
	tokens float64
	refill float64 // tokens per second
	last   time.Time

	allowed atomic.Int64
	denied  atomic.Int64
}

// NewBudget builds a bucket holding capacity tokens that refills at
// refillPerSec. capacity <= 0 defaults to 32 tokens, refillPerSec <= 0
// to 8/s; a nil clock means the real one.
func NewBudget(capacity int, refillPerSec float64, clock chaos.Clock) *Budget {
	if capacity <= 0 {
		capacity = 32
	}
	if refillPerSec <= 0 {
		refillPerSec = 8
	}
	if clock == nil {
		clock = chaos.Real()
	}
	return &Budget{
		clock:  clock,
		cap:    float64(capacity),
		tokens: float64(capacity),
		refill: refillPerSec,
		last:   clock.Now(),
	}
}

// Allow consumes one retry token, reporting false when the bucket is
// empty — the caller must give up rather than retry.
func (b *Budget) Allow() bool {
	b.mu.Lock()
	now := b.clock.Now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.refill
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
	}
	b.last = now
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if ok {
		b.allowed.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// Allowed and Denied report how many retries the budget granted and
// refused; their sum is the total retry demand the client generated.
func (b *Budget) Allowed() int64 { return b.allowed.Load() }
func (b *Budget) Denied() int64  { return b.denied.Load() }
