package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

// Set is a health-gated replica set: a list of interfd base URLs, a
// cached /readyz verdict per replica, and a round-robin picker that
// skips replicas known to be down or draining. Submission fails over:
// a refused connection, a 5xx, or a draining daemon marks the replica
// down and resubmits the campaign to a healthy one, budget-gated and
// honoring the server's Retry-After. Exactly-once execution is not the
// Set's job — it is bounded by the replicas' shared content-addressed
// cache and campaign singleflight, which turn a resubmission into a
// cheap cache replay.
type Set struct {
	urls   []string
	rt     http.RoundTripper
	clock  chaos.Clock
	budget *Budget

	client      *http.Client // submissions: campaigns legitimately run minutes
	probeClient *http.Client // /readyz probes: answers are instant or useless

	probeTTL time.Duration // how long a healthy verdict is trusted
	downTTL  time.Duration // how long a failed replica is quarantined

	maxAttempts int

	mu    sync.Mutex
	state []health
	next  int // round-robin rotation
	rng   *rand.Rand

	failovers   atomic.Int64 // resubmissions that landed on a different replica
	submissions atomic.Int64
	retried     atomic.Int64 // submission retries (any replica)
}

type health struct {
	healthy bool
	checked time.Time
}

// Options tunes a Set; the zero value is production defaults.
type Options struct {
	// Transport replaces the HTTP transport (chaos drills).
	Transport http.RoundTripper
	// Clock paces backoff and health TTLs; nil means the real clock.
	Clock chaos.Clock
	// Budget gates retries; nil builds a default NewBudget.
	Budget *Budget
	// ProbeTTL / DownTTL override the health-cache windows
	// (defaults 1s healthy, 2s quarantined).
	ProbeTTL, DownTTL time.Duration
	// SubmitTimeout bounds one submission round trip (default 30m —
	// a campaign legitimately computes for a long time).
	SubmitTimeout time.Duration
	// MaxAttempts bounds submission tries across all replicas
	// (default 2*len(urls)+2).
	MaxAttempts int
	// Seed makes backoff jitter reproducible in tests; 0 seeds from
	// the clock.
	Seed int64
}

// ParseList splits a comma-separated replica list ("http://a:7077,
// http://b:7077"), trimming space and trailing slashes. Every entry
// must be an http(s) URL.
func ParseList(s string) ([]string, error) {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.HasPrefix(part, "http://") && !strings.HasPrefix(part, "https://") {
			return nil, fmt.Errorf("replica: %q is not an http(s) URL", part)
		}
		for len(part) > 0 && part[len(part)-1] == '/' {
			part = part[:len(part)-1]
		}
		urls = append(urls, part)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("replica: empty replica list")
	}
	return urls, nil
}

// NewSet builds a replica set over urls (see ParseList).
func NewSet(urls []string, opts Options) *Set {
	if opts.Clock == nil {
		opts.Clock = chaos.Real()
	}
	if opts.Budget == nil {
		opts.Budget = NewBudget(0, 0, opts.Clock)
	}
	if opts.ProbeTTL <= 0 {
		opts.ProbeTTL = time.Second
	}
	if opts.DownTTL <= 0 {
		opts.DownTTL = 2 * time.Second
	}
	if opts.SubmitTimeout <= 0 {
		opts.SubmitTimeout = 30 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 2*len(urls) + 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = opts.Clock.Now().UnixNano()
	}
	return &Set{
		urls:        urls,
		rt:          opts.Transport,
		clock:       opts.Clock,
		budget:      opts.Budget,
		client:      &http.Client{Timeout: opts.SubmitTimeout, Transport: opts.Transport},
		probeClient: &http.Client{Timeout: 2 * time.Second, Transport: opts.Transport},
		probeTTL:    opts.ProbeTTL,
		downTTL:     opts.DownTTL,
		maxAttempts: opts.MaxAttempts,
		state:       make([]health, len(urls)),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// URLs reports the replica base URLs in order.
func (s *Set) URLs() []string { return append([]string(nil), s.urls...) }

// Budget exposes the shared retry budget so cache traffic can be gated
// by the same bucket.
func (s *Set) Budget() *Budget { return s.budget }

// Failovers counts submissions or cache operations that moved to a
// different replica after a failure.
func (s *Set) Failovers() int64 { return s.failovers.Load() }

// Retried counts submission retries (same or different replica).
func (s *Set) Retried() int64 { return s.retried.Load() }

// healthyAt reports replica i's cached health, reprobing /readyz when
// the verdict is stale. The health cache is deliberately loose — two
// goroutines may probe concurrently; both verdicts are fresh.
func (s *Set) healthyAt(i int) bool {
	s.mu.Lock()
	st := s.state[i]
	s.mu.Unlock()
	ttl := s.probeTTL
	if !st.healthy && !st.checked.IsZero() {
		ttl = s.downTTL
	}
	if !st.checked.IsZero() && s.clock.Now().Before(st.checked.Add(ttl)) {
		return st.healthy
	}
	h := s.probe(i)
	s.mu.Lock()
	s.state[i] = health{healthy: h, checked: s.clock.Now()}
	s.mu.Unlock()
	return h
}

// probe asks one replica whether it would accept a submission right
// now: /readyz answers 503 while draining or with a full queue, which
// is exactly the signal to steer new campaigns elsewhere.
func (s *Set) probe(i int) bool {
	resp, err := s.probeClient.Get(s.urls[i] + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// markDown quarantines a replica after an observed failure: the picker
// skips it for downTTL before a probe may rehabilitate it.
func (s *Set) markDown(i int) {
	s.mu.Lock()
	s.state[i] = health{healthy: false, checked: s.clock.Now()}
	s.mu.Unlock()
}

// pick returns the next healthy replica round-robin, or ok=false when
// none answers its probe.
func (s *Set) pick() (int, bool) {
	s.mu.Lock()
	start := s.next
	s.next = (s.next + 1) % len(s.urls)
	s.mu.Unlock()
	for k := 0; k < len(s.urls); k++ {
		i := (start + k) % len(s.urls)
		if s.healthyAt(i) {
			return i, true
		}
	}
	return 0, false
}

// pickOther returns a healthy replica other than exclude.
func (s *Set) pickOther(exclude int) (int, bool) {
	for k := 1; k < len(s.urls); k++ {
		i := (exclude + k) % len(s.urls)
		if s.healthyAt(i) {
			return i, true
		}
	}
	return 0, false
}

// SubmitError is a permanent, replica-independent submission failure
// (the daemon answered 4xx); retrying elsewhere cannot change it.
type SubmitError struct {
	Status int
	Msg    string
}

func (e *SubmitError) Error() string {
	return fmt.Sprintf("daemon rejected the campaign: %d: %s", e.Status, e.Msg)
}

// Submit posts one campaign spec to a healthy replica, failing over on
// refused connections, 5xx answers and draining daemons. Each retry
// consumes a budget token and sleeps the server's Retry-After when one
// was sent (capped), else jittered exponential backoff. deadline > 0
// rides along as X-Deadline so the daemon can refuse work it cannot
// finish in time; apiKey (optional) identifies the client for fair
// queueing.
func (s *Set) Submit(spec server.CampaignSpec, deadline time.Duration, apiKey string) (*server.CampaignResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	s.submissions.Add(1)
	var lastErr error
	lastFailed := -1
	for attempt := 0; ; attempt++ {
		var retryAfter time.Duration
		if i, ok := s.pick(); !ok {
			lastErr = fmt.Errorf("no replica of %s is healthy", strings.Join(s.urls, ","))
		} else {
			if lastFailed >= 0 && i != lastFailed {
				s.failovers.Add(1)
			}
			var resp *server.CampaignResponse
			resp, retryAfter, err = s.submitOnce(i, body, deadline, apiKey)
			if err == nil {
				return resp, nil
			}
			if se, permanent := err.(*SubmitError); permanent {
				return nil, se
			}
			s.markDown(i)
			lastFailed = i
			lastErr = err
		}
		if attempt+1 >= s.maxAttempts {
			return nil, fmt.Errorf("submission failed after %d attempts: %w", attempt+1, lastErr)
		}
		if !s.budget.Allow() {
			return nil, fmt.Errorf("retry budget exhausted after %d attempts: %w", attempt+1, lastErr)
		}
		s.retried.Add(1)
		if retryAfter > 0 {
			s.sleep(retryAfter)
		} else {
			s.backoff(attempt)
		}
	}
}

// submitOnce performs one POST /campaign against replica i.
func (s *Set) submitOnce(i int, body []byte, deadline time.Duration, apiKey string) (*server.CampaignResponse, time.Duration, error) {
	req, err := http.NewRequest(http.MethodPost, s.urls[i]+"/campaign", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if deadline > 0 {
		req.Header.Set("X-Deadline", deadline.String())
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("submitting campaign to %s: %w", s.urls[i], err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("reading campaign response from %s: %w", s.urls[i], err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, 0, &SubmitError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(payload))}
	default:
		ra, _ := server.ParseRetryAfter(resp.Header.Get("Retry-After"), maxRetryAfter)
		return nil, ra, fmt.Errorf("%s answered %s: %s", s.urls[i], resp.Status, bytes.TrimSpace(payload))
	}
	var cr server.CampaignResponse
	if err := json.Unmarshal(payload, &cr); err != nil {
		return nil, 0, fmt.Errorf("decoding campaign response from %s: %w", s.urls[i], err)
	}
	return &cr, 0, nil
}

// maxRetryAfter caps how long a server-sent Retry-After may park a
// resubmission; past this the client's own backoff is smarter.
const maxRetryAfter = 5 * time.Second

// backoff sleeps the jittered exponential delay for one retry attempt.
func (s *Set) backoff(attempt int) {
	base := 25 * time.Millisecond
	max := time.Second
	d := base << attempt
	if d > max || d <= 0 {
		d = max
	}
	s.mu.Lock()
	jitter := 0.5 + s.rng.Float64()
	s.mu.Unlock()
	s.sleep(time.Duration(float64(d) * jitter))
}

func (s *Set) sleep(d time.Duration) { s.clock.Sleep(d) }
