package replica

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
	"repro/internal/server"
)

// realDaemon boots a full in-process interfd (real campaign execution,
// not a stub) over cacheDir.
func realDaemon(t *testing.T, cacheDir string, queue int) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Config{CacheDir: cacheDir, Shards: 2, QueueDepth: queue, MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// soakView is the deterministic slice of a campaign response: rendered
// bytes and simulation accounting, not wall-clock timings.
func soakView(cr *server.CampaignResponse) string {
	type row struct {
		ID, Rendered, Error string
		SimSeconds          float64
		Worlds              int
	}
	var out []row
	for _, er := range cr.Results {
		out = append(out, row{er.ID, er.Rendered, er.Error, er.SimSeconds, er.Worlds})
	}
	b, _ := json.Marshal(out)
	return string(b)
}

func soakEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestFailoverSoak is the stampede drill: two replicas share one
// content-addressed cache directory, eight clients submit a hundred-plus
// campaigns through a failover Set, and one replica is killed (every
// connection refused, the shape a SIGKILL leaves) a third of the way
// in. The contract:
//
//   - every campaign completes with results byte-identical to a serial
//     run on an untouched daemon — failover is invisible in the output;
//   - the retry volume stays inside the token budget (nothing denied,
//     and the retries actually spent are a handful, not a storm);
//   - the kill was actually observed (failovers happened);
//   - total cache misses across both replicas stay bounded by the union
//     of distinct points plus the cross-replica duplication window —
//     killing a replica must not trigger wholesale recomputation.
func TestFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak; skipped with -short")
	}
	clients := soakEnvInt("REPLICA_SOAK_CLIENTS", 8)
	perClient := soakEnvInt("REPLICA_SOAK_PER_CLIENT", 13)
	total := clients * perClient

	specs := []server.CampaignSpec{
		{Experiments: []string{"fig3"}, Seed: 1, Runs: 1},
		{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3", "ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3"}, Seed: 2, Runs: 1},
	}

	// Oracle phase: a pristine daemon, serial submissions. Its miss
	// count after the phase is the union of distinct points |U|.
	oracle, oracleTS := realDaemon(t, filepath.Join(t.TempDir(), "oracle"), total+8)
	oracleSet := NewSet([]string{oracleTS.URL}, Options{Seed: 1})
	want := make([]string, len(specs))
	for i, spec := range specs {
		cr, err := oracleSet.Submit(spec, 0, "")
		if err != nil {
			t.Fatalf("oracle spec %d: %v", i, err)
		}
		if cr.Errors != 0 {
			t.Fatalf("oracle spec %d: %d experiment errors", i, cr.Errors)
		}
		want[i] = soakView(cr)
	}
	union := oracle.Metrics().Cache.Misses
	if union == 0 {
		t.Fatal("oracle computed nothing")
	}

	// The fleet: two replicas over ONE cache directory, fronted by a
	// kill switch.
	shared := filepath.Join(t.TempDir(), "shared-cache")
	a, aTS := realDaemon(t, shared, total+8)
	b, bTS := realDaemon(t, shared, total+8)
	drill := chaos.NewReplicaDrill()
	budget := NewBudget(64, 16, nil)
	set := NewSet([]string{aTS.URL, bTS.URL}, Options{Transport: drill, Budget: budget, Seed: 7})

	killAt := int64(total / 3)
	victim := strings.TrimPrefix(aTS.URL, "http://")
	var submitted atomic.Int64
	var killed atomic.Bool

	type outcome struct {
		spec int
		cmp  string
		err  error
	}
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if submitted.Add(1) == killAt && killed.CompareAndSwap(false, true) {
					drill.Kill(victim) // SIGKILL replica A mid-storm
				}
				idx := (c + k) % len(specs)
				cr, err := set.Submit(specs[idx], 0, fmt.Sprintf("client-%d", c))
				o := outcome{spec: idx, err: err}
				if err == nil {
					o.cmp = soakView(cr)
				}
				outcomes[c*perClient+k] = o
			}
		}()
	}
	wg.Wait()

	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("storm submission %d (spec %d) failed despite failover: %v", i, o.spec, o.err)
		}
		if o.cmp != want[o.spec] {
			t.Fatalf("storm submission %d: spec %d differs from the serial oracle:\n got %s\nwant %s",
				i, o.spec, o.cmp, want[o.spec])
		}
	}

	if set.Failovers() == 0 {
		t.Fatal("replica was killed mid-storm but no submission failed over")
	}
	if budget.Denied() != 0 {
		t.Fatalf("retry budget starved %d retries; failover demanded more than the budget", budget.Denied())
	}
	// Health gating must keep the retry volume at blip scale: one
	// markDown quarantines the corpse, so only the submissions racing
	// the kill itself pay a retry — not every subsequent campaign.
	if maxRetries := int64(4 * clients); set.Retried() > maxRetries {
		t.Fatalf("retried %d submissions for one kill across %d clients (want <= %d): retry storm",
			set.Retried(), clients, maxRetries)
	}

	// Exactly-once, fleet edition: both replicas share the disk cache,
	// so the only duplicate executions allowed are points two replicas
	// raced to compute before either stored. That window is bounded by
	// the union itself (each point can at worst be computed once per
	// replica) — and must stay there; a failover storm recomputing the
	// world would blow far past it.
	ma, mb := a.Metrics(), b.Metrics()
	misses := ma.Cache.Misses + mb.Cache.Misses
	if misses < union {
		t.Fatalf("fleet misses %d < union %d: the oracle disagrees with the fleet", misses, union)
	}
	if misses > 2*union {
		t.Fatalf("fleet misses %d > 2x union %d: failover recomputed wholesale", misses, union)
	}
	if rejected := ma.Campaigns.Rejected + mb.Campaigns.Rejected; rejected != 0 {
		t.Fatalf("queues sized for the storm still rejected %d", rejected)
	}
	t.Logf("soak: %d campaigns, union %d, fleet misses %d (A %d + B %d), failovers %d, retried %d, budget granted %d",
		total, union, misses, ma.Cache.Misses, mb.Cache.Misses,
		set.Failovers(), set.Retried(), budget.Allowed())
}
