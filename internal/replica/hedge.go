package replica

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/runner"
	"repro/internal/server"
)

// Cache is a hedged, failover runner.CacheStore over a replica Set:
// every replica serves the same content-addressed records, so any
// healthy one is as good as another. Loads go to one replica first;
// when no answer arrives within the hedge delay — an EWMA-p95 estimate
// of recent load latency — a second replica is raced and the first
// good answer wins. A replica that fails fast (refused connection) is
// quarantined and the load fails over sequentially. All hedges and
// failovers consume the Set's shared retry budget, so tail-latency
// insurance can never amplify into a storm against a struggling fleet.
type Cache struct {
	set    *Set
	stores []*server.RemoteCache
	clock  chaos.Clock

	mu     sync.Mutex
	meanMs float64 // EWMA of successful load latency
	devMs  float64 // EWMA of absolute deviation
	forced time.Duration

	minHedge, maxHedge time.Duration

	hedges    atomic.Int64 // hedged loads launched
	hedgeWins atomic.Int64 // hedge answered first (with a good answer)
	failovers atomic.Int64 // sequential failovers after a fast failure
}

// NewCache builds the hedged store over set, mirroring retry counters
// into stats (optional). Per-replica transports, clocks and the shared
// budget come from the set; per-replica retries are kept low (1)
// because failover and hedging already provide the second chance.
func NewCache(set *Set, stats *runner.CacheStats) *Cache {
	c := &Cache{
		set:      set,
		clock:    set.clock,
		minHedge: 2 * time.Millisecond,
		maxHedge: 250 * time.Millisecond,
	}
	for _, u := range set.urls {
		rc := server.NewRemoteCache(u)
		rc.SetRetries(1, 0, 0)
		rc.SetClock(set.clock)
		rc.SetBudget(set.budget)
		if set.rt != nil {
			rc.SetTransport(set.rt)
		}
		if stats != nil {
			rc.AttachStats(stats)
		}
		c.stores = append(c.stores, rc)
	}
	return c
}

// SetRequestTimeout propagates a per-request deadline to every
// replica's store.
func (c *Cache) SetRequestTimeout(d time.Duration) {
	for _, rc := range c.stores {
		rc.SetRequestTimeout(d)
	}
}

// SetHedgeDelay forces a fixed hedge delay (tests and measurements);
// 0 restores the adaptive EWMA-p95 delay.
func (c *Cache) SetHedgeDelay(d time.Duration) {
	c.mu.Lock()
	c.forced = d
	c.mu.Unlock()
}

// Hedges, HedgeWins and Failovers report the tail-insurance counters.
func (c *Cache) Hedges() int64    { return c.hedges.Load() }
func (c *Cache) HedgeWins() int64 { return c.hedgeWins.Load() }
func (c *Cache) Failovers() int64 { return c.failovers.Load() }

// hedgeDelay estimates when a load has gone tail: EWMA mean plus three
// absolute deviations (≈p95 for the latency shapes cache GETs show),
// clamped. With no history the hedge waits the maximum — hedging early
// on a cold estimator would double traffic for nothing.
func (c *Cache) hedgeDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.forced > 0 {
		return c.forced
	}
	if c.meanMs == 0 {
		return c.maxHedge
	}
	d := time.Duration((c.meanMs + 3*c.devMs) * float64(time.Millisecond))
	if d < c.minHedge {
		d = c.minHedge
	}
	if d > c.maxHedge {
		d = c.maxHedge
	}
	return d
}

// observe feeds one successful load's latency into the estimator.
func (c *Cache) observe(elapsed time.Duration) {
	ms := float64(elapsed.Microseconds()) / 1e3
	c.mu.Lock()
	if c.meanMs == 0 {
		c.meanMs = ms
	} else {
		c.meanMs += ewmaAlphaHedge * (ms - c.meanMs)
	}
	dev := ms - c.meanMs
	if dev < 0 {
		dev = -dev
	}
	c.devMs += ewmaAlphaHedge * (dev - c.devMs)
	c.mu.Unlock()
}

const ewmaAlphaHedge = 0.2

type loadResult struct {
	rec          bench.PointRecord
	ok, mismatch bool
	ioErr        bool
	from         int
	elapsed      time.Duration
}

func (c *Cache) launch(i int, key string, ch chan<- loadResult) {
	start := c.clock.Now()
	go func() {
		rec, ok, mismatch, ioErr := c.stores[i].Load(key)
		ch <- loadResult{rec: rec, ok: ok, mismatch: mismatch, ioErr: ioErr,
			from: i, elapsed: c.clock.Now().Sub(start)}
	}()
}

// Load implements runner.CacheStore with hedging and failover. At most
// two attempts ever run: the primary plus either a hedge (slow
// primary) or a sequential failover (fast-failing primary).
func (c *Cache) Load(key string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	primary, found := c.set.pick()
	if !found {
		// No healthy replica: an I/O error, so breaker/degrade machinery
		// upstairs reacts instead of treating the fleet as an empty cache.
		return bench.PointRecord{}, false, false, true
	}
	ch := make(chan loadResult, 2)
	c.launch(primary, key, ch)
	timer := c.clock.After(c.hedgeDelay())
	launched, second := 1, -1
	inflight := 1
	for {
		select {
		case r := <-ch:
			inflight--
			if !r.ioErr {
				if r.from == second && second >= 0 {
					c.hedgeWins.Add(1)
				}
				c.observe(r.elapsed)
				return r.rec, r.ok, r.mismatch, false
			}
			c.set.markDown(r.from)
			if inflight > 0 {
				continue // the race partner may still answer
			}
			if launched < 2 {
				// Fast failure with no hedge out yet: sequential failover.
				if j, okOther := c.set.pickOther(r.from); okOther && c.set.budget.Allow() {
					c.failovers.Add(1)
					c.launch(j, key, ch)
					launched, inflight = launched+1, inflight+1
					timer = nil // the failover IS the second attempt
					continue
				}
			}
			return bench.PointRecord{}, false, false, true
		case <-timer:
			timer = nil
			if launched >= 2 {
				continue
			}
			if j, okOther := c.set.pickOther(primary); okOther && c.set.budget.Allow() {
				c.hedges.Add(1)
				second = j
				c.launch(j, key, ch)
				launched, inflight = launched+1, inflight+1
			}
		}
	}
}

// Store implements runner.CacheStore: write to one healthy replica,
// failing over once on error. Every replica shares the content
// address space, so one durable copy is enough — the next reader of a
// replica that missed the write recomputes or hedges.
func (c *Cache) Store(key string, rec bench.PointRecord) error {
	primary, found := c.set.pick()
	if !found {
		return errNoHealthyReplica
	}
	err := c.stores[primary].Store(key, rec)
	if err == nil {
		return nil
	}
	c.set.markDown(primary)
	if j, ok := c.set.pickOther(primary); ok && c.set.budget.Allow() {
		c.failovers.Add(1)
		if err2 := c.stores[j].Store(key, rec); err2 == nil {
			return nil
		}
		c.set.markDown(j)
	}
	return err
}

var errNoHealthyReplica = &noReplicaError{}

type noReplicaError struct{}

func (*noReplicaError) Error() string { return "replica: no healthy replica" }
