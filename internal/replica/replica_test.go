package replica

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/runner"
	"repro/internal/server"
)

// fakeReplica is a minimal stand-in for an interfd daemon: scripted
// /readyz, /campaign and /cache behavior.
type fakeReplica struct {
	t        *testing.T
	ts       *httptest.Server
	ready    atomic.Bool
	submits  atomic.Int64
	gets     atomic.Int64
	puts     atomic.Int64
	campaign func(w http.ResponseWriter, r *http.Request)
	cacheGet func(w http.ResponseWriter, r *http.Request)
}

func newFakeReplica(t *testing.T) *fakeReplica {
	f := &fakeReplica{t: t}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/campaign", func(w http.ResponseWriter, r *http.Request) {
		f.submits.Add(1)
		if f.campaign != nil {
			f.campaign(w, r)
			return
		}
		json.NewEncoder(w).Encode(server.CampaignResponse{ID: "ok"})
	})
	mux.HandleFunc("GET /cache/{sum}", func(w http.ResponseWriter, r *http.Request) {
		f.gets.Add(1)
		if f.cacheGet != nil {
			f.cacheGet(w, r)
			return
		}
		http.NotFound(w, r)
	})
	mux.HandleFunc("PUT /cache/{sum}", func(w http.ResponseWriter, r *http.Request) {
		f.puts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// serveRecord makes the replica's cache answer every GET with a valid
// record for key.
func (f *fakeReplica) serveRecord(key string) {
	rec := bench.PointRecord{Schema: bench.PointSchema, Key: key, Payload: json.RawMessage(`{"v":1}`)}
	body, err := json.Marshal(rec)
	if err != nil {
		f.t.Fatal(err)
	}
	f.cacheGet = func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}
}

func testSpec() server.CampaignSpec {
	return server.CampaignSpec{Experiments: []string{"sim_contention"}, Seed: 1, Runs: 1}
}

func TestParseList(t *testing.T) {
	urls, err := ParseList(" http://a:7077/ , http://b:7077 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "http://a:7077" || urls[1] != "http://b:7077" {
		t.Fatalf("urls = %v", urls)
	}
	if _, err := ParseList("ftp://nope"); err == nil {
		t.Fatal("non-http URL accepted")
	}
	if _, err := ParseList(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestBudgetRefill(t *testing.T) {
	clk := chaos.NewFakeClock()
	b := NewBudget(2, 1, clk)
	if !b.Allow() || !b.Allow() {
		t.Fatal("full bucket refused a token")
	}
	if b.Allow() {
		t.Fatal("empty bucket granted a token")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("bucket did not refill after a second")
	}
	if got := b.Allowed(); got != 3 {
		t.Fatalf("Allowed = %d, want 3", got)
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("Denied = %d, want 1", got)
	}
}

func TestSubmitFailsOver(t *testing.T) {
	bad, good := newFakeReplica(t), newFakeReplica(t)
	bad.campaign = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	s := NewSet([]string{bad.ts.URL, good.ts.URL}, Options{Seed: 1})
	resp, err := s.Submit(testSpec(), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "ok" {
		t.Fatalf("resp.ID = %q", resp.ID)
	}
	if s.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", s.Failovers())
	}
	if s.Retried() != 1 {
		t.Fatalf("Retried = %d, want 1", s.Retried())
	}
}

func TestSubmitSkipsUnreadyReplica(t *testing.T) {
	drain, good := newFakeReplica(t), newFakeReplica(t)
	drain.ready.Store(false)
	s := NewSet([]string{drain.ts.URL, good.ts.URL}, Options{Seed: 1})
	if _, err := s.Submit(testSpec(), 0, ""); err != nil {
		t.Fatal(err)
	}
	if n := drain.submits.Load(); n != 0 {
		t.Fatalf("draining replica received %d submissions", n)
	}
	if s.Failovers() != 0 {
		t.Fatalf("Failovers = %d, want 0 (health gate is not a failover)", s.Failovers())
	}
}

func TestSubmitPermanentErrorDoesNotRetry(t *testing.T) {
	f := newFakeReplica(t)
	f.campaign = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unknown experiment", http.StatusBadRequest)
	}
	s := NewSet([]string{f.ts.URL}, Options{Seed: 1})
	_, err := s.Submit(testSpec(), 0, "")
	se, ok := err.(*SubmitError)
	if !ok {
		t.Fatalf("err = %v, want *SubmitError", err)
	}
	if se.Status != http.StatusBadRequest {
		t.Fatalf("Status = %d", se.Status)
	}
	if n := f.submits.Load(); n != 1 {
		t.Fatalf("4xx was retried: %d submissions", n)
	}
}

func TestSubmitHonorsRetryAfter(t *testing.T) {
	clk := chaos.NewFakeClock()
	f := newFakeReplica(t)
	var n atomic.Int64
	f.campaign = func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(server.CampaignResponse{ID: "ok"})
	}
	s := NewSet([]string{f.ts.URL}, Options{Clock: clk, Seed: 1})
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(testSpec(), 0, "")
		done <- err
	}()
	// The retry must park on the server's Retry-After, driven by the
	// fake clock — not the default backoff (25ms-scale, not 2s).
	deadline := time.After(5 * time.Second)
	for clk.Waiters() == 0 {
		select {
		case err := <-done:
			t.Fatalf("submission finished without sleeping Retry-After: %v", err)
		case <-deadline:
			t.Fatal("no sleeper appeared")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	clk.Advance(2 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 2 {
		t.Fatalf("submissions = %d, want 2", got)
	}
}

func TestSubmitRetryBudgetExhausted(t *testing.T) {
	f := newFakeReplica(t)
	f.campaign = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	b := NewBudget(1, 0.001, chaos.Real())
	s := NewSet([]string{f.ts.URL, f.ts.URL}, Options{Budget: b, MaxAttempts: 50, Seed: 1})
	_, err := s.Submit(testSpec(), 0, "")
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want retry-budget failure", err)
	}
	// Capacity 1: the first retry wins the only token, the second is
	// refused — total tries bounded at 2 despite MaxAttempts=50.
	if n := f.submits.Load(); n != 2 {
		t.Fatalf("submissions = %d, want 2 (budget must bound retries)", n)
	}
}

func TestSubmitSendsDeadlineAndKey(t *testing.T) {
	f := newFakeReplica(t)
	var gotDeadline, gotKey string
	f.campaign = func(w http.ResponseWriter, r *http.Request) {
		gotDeadline = r.Header.Get("X-Deadline")
		gotKey = r.Header.Get("X-API-Key")
		json.NewEncoder(w).Encode(server.CampaignResponse{ID: "ok"})
	}
	s := NewSet([]string{f.ts.URL}, Options{Seed: 1})
	if _, err := s.Submit(testSpec(), 90*time.Second, "alice"); err != nil {
		t.Fatal(err)
	}
	if gotDeadline != "1m30s" {
		t.Fatalf("X-Deadline = %q", gotDeadline)
	}
	if gotKey != "alice" {
		t.Fatalf("X-API-Key = %q", gotKey)
	}
}

func TestHedgedLoadFailsOverOnFastFailure(t *testing.T) {
	const key = "sweep/point=1"
	bad, good := newFakeReplica(t), newFakeReplica(t)
	bad.cacheGet = func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}
	good.serveRecord(key)
	set := NewSet([]string{bad.ts.URL, good.ts.URL}, Options{Seed: 1})
	var stats runner.CacheStats
	c := NewCache(set, &stats)
	rec, ok, mismatch, ioErr := c.Load(key)
	if !ok || mismatch || ioErr {
		t.Fatalf("Load = ok=%v mismatch=%v ioErr=%v", ok, mismatch, ioErr)
	}
	if rec.Key != key {
		t.Fatalf("rec.Key = %q", rec.Key)
	}
	if c.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", c.Failovers())
	}
}

func TestHedgedLoadRacesSlowReplica(t *testing.T) {
	const key = "sweep/point=2"
	slow, fast := newFakeReplica(t), newFakeReplica(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	slow.cacheGet = func(w http.ResponseWriter, r *http.Request) {
		select { // park until the test ends: a tail-latency straggler
		case <-release:
		case <-r.Context().Done():
		}
		http.NotFound(w, r)
	}
	fast.serveRecord(key)
	set := NewSet([]string{slow.ts.URL, fast.ts.URL}, Options{Seed: 1})
	c := NewCache(set, nil)
	c.SetHedgeDelay(5 * time.Millisecond)
	done := make(chan bool, 1)
	go func() {
		_, ok, _, ioErr := c.Load(key)
		done <- ok && !ioErr
	}()
	select {
	case good := <-done:
		if !good {
			t.Fatal("hedged load failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hedged load did not return while the primary hung")
	}
	if c.Hedges() != 1 {
		t.Fatalf("Hedges = %d, want 1", c.Hedges())
	}
	if c.HedgeWins() != 1 {
		t.Fatalf("HedgeWins = %d, want 1", c.HedgeWins())
	}
}

func TestHedgedLoadMissIsNotHedged(t *testing.T) {
	set := NewSet([]string{newFakeReplica(t).ts.URL, newFakeReplica(t).ts.URL}, Options{Seed: 1})
	c := NewCache(set, nil)
	_, ok, mismatch, ioErr := c.Load("sweep/point=3")
	if ok || mismatch || ioErr {
		t.Fatalf("miss reported ok=%v mismatch=%v ioErr=%v", ok, mismatch, ioErr)
	}
	if c.Hedges() != 0 {
		t.Fatalf("a fast miss hedged anyway: %d", c.Hedges())
	}
}

func TestHedgedStoreFailsOver(t *testing.T) {
	good := newFakeReplica(t)
	badTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "disk full", http.StatusInternalServerError)
	}))
	t.Cleanup(badTS.Close)
	set := NewSet([]string{badTS.URL, good.ts.URL}, Options{Seed: 1})
	c := NewCache(set, nil)
	rec := bench.PointRecord{Schema: bench.PointSchema, Key: "sweep/point=4"}
	if err := c.Store("sweep/point=4", rec); err != nil {
		t.Fatal(err)
	}
	if good.puts.Load() != 1 {
		t.Fatalf("good replica saw %d PUTs, want 1", good.puts.Load())
	}
	if c.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", c.Failovers())
	}
}

func TestHedgeDelayAdapts(t *testing.T) {
	c := &Cache{clock: chaos.Real(), minHedge: 2 * time.Millisecond, maxHedge: 250 * time.Millisecond}
	if d := c.hedgeDelay(); d != 250*time.Millisecond {
		t.Fatalf("cold delay = %v, want max", d)
	}
	for i := 0; i < 50; i++ {
		c.observe(10 * time.Millisecond)
	}
	d := c.hedgeDelay()
	if d < 2*time.Millisecond || d > 30*time.Millisecond {
		t.Fatalf("adapted delay = %v, want near 10ms", d)
	}
	c.SetHedgeDelay(7 * time.Millisecond)
	if d := c.hedgeDelay(); d != 7*time.Millisecond {
		t.Fatalf("forced delay = %v", d)
	}
}
