package net

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t *testing.T) (*machine.Cluster, *Network) {
	t.Helper()
	c := machine.NewCluster(topology.Henri(), 2, 1)
	return c, New(c)
}

func TestWiresAreDirectedPerPair(t *testing.T) {
	c, nw := testNet(t)
	if nw.Wire(0, 1) == nw.Wire(1, 0) {
		t.Fatal("wire directions share a resource; full duplex expected")
	}
	if got := nw.Wire(0, 1).Capacity(); math.Abs(got-10.9e9) > 1 {
		t.Fatalf("wire capacity %v, want 10.9e9", got)
	}
	_ = c
	defer func() {
		if recover() == nil {
			t.Fatal("self-wire lookup did not panic")
		}
	}()
	nw.Wire(0, 0)
}

func TestDMAUsesPaths(t *testing.T) {
	c, nw := testNet(t)
	src, dst := c.Nodes[0], c.Nodes[1]
	// Data on the NIC NUMA node (0) at both ends: ctrl+pcie+wire+pcie+ctrl.
	near := nw.DMAUses(src, 0, dst, 0)
	if len(near) != 5 {
		t.Fatalf("near-near path has %d uses, want 5", len(near))
	}
	// Data far from the NIC on both ends: + one link per end.
	far := nw.DMAUses(src, 3, dst, 3)
	if len(far) != 7 {
		t.Fatalf("far-far path has %d uses, want 7", len(far))
	}
}

func TestTransferDMAUncontendedHitsWireSpeed(t *testing.T) {
	c, nw := testNet(t)
	src, dst := c.Nodes[0], c.Nodes[1]
	srcBuf := src.Alloc(64<<20, 0)
	dstBuf := dst.Alloc(64<<20, 0)
	var d sim.Duration
	c.K.Spawn("xfer", func(p *sim.Proc) {
		start := p.Now()
		nw.TransferDMA(p, src, srcBuf, dst, dstBuf, 64<<20)
		d = p.Now().Sub(start)
	})
	c.K.Run()
	gbps := float64(64<<20) / d.Seconds() / 1e9
	if math.Abs(gbps-10.9) > 0.05 {
		t.Fatalf("uncontended DMA at %.2f GB/s, want ~10.9", gbps)
	}
}

func TestTransferDMAContendedSharesController(t *testing.T) {
	c, nw := testNet(t)
	src, dst := c.Nodes[0], c.Nodes[1]
	// Saturate the source data controller with compute streams.
	for i := 0; i < 35; i++ {
		i := i
		c.K.Spawn("stream", func(p *sim.Proc) {
			src.ExecCompute(p, i, machine.ComputeSpec{
				Flops: 1, Bytes: 5e9, Class: topology.Scalar, MemNUMA: 0,
			})
		})
	}
	srcBuf := src.Alloc(64<<20, 0)
	dstBuf := dst.Alloc(64<<20, 0)
	var d sim.Duration
	c.K.Spawn("xfer", func(p *sim.Proc) {
		p.Sleep(sim.Duration(sim.Millisecond)) // let streams settle
		start := p.Now()
		nw.TransferDMA(p, src, srcBuf, dst, dstBuf, 64<<20)
		d = p.Now().Sub(start)
	})
	c.K.Run()
	gbps := float64(64<<20) / d.Seconds() / 1e9
	if gbps > 7 {
		t.Fatalf("contended DMA at %.2f GB/s; contention not applied", gbps)
	}
	if gbps < 1.5 {
		t.Fatalf("contended DMA at %.2f GB/s; DMA arbitration priority lost", gbps)
	}
}

func TestSendOverheadScalesWithFrequency(t *testing.T) {
	c, nw := testNet(t)
	n := c.Nodes[0]
	measure := func(ghz float64) sim.Duration {
		n.Freq.SetUserspace(ghz)
		var d sim.Duration
		done := false
		c.K.Spawn("o", func(p *sim.Proc) {
			start := p.Now()
			nw.SendOverhead(p, n, 0, 0)
			d = p.Now().Sub(start)
			done = true
		})
		c.K.Run()
		if !done {
			t.Fatal("overhead proc did not finish")
		}
		return d
	}
	slow := measure(1.0)
	fast := measure(2.3)
	if slow <= fast {
		t.Fatalf("overhead at 1.0GHz (%v) not above 2.3GHz (%v)", slow, fast)
	}
	// The cycle part scales exactly with frequency; the memory part does
	// not. Check the cycle delta: 1050 cycles × (1/1.0 − 1/2.3) ≈ 594 ns.
	delta := slow - fast
	if delta < 400 || delta > 800 {
		t.Fatalf("frequency delta %v outside expected range", delta)
	}
}

func TestPIOFarThreadFeelsLinkContention(t *testing.T) {
	c, nw := testNet(t)
	n := c.Nodes[0]
	n.Freq.SetUserspace(2.3)
	n.Freq.SetUncoreFixed(2.4)
	// Comm thread far from the NIC (NUMA 3; NIC on 0).
	farCore := n.Spec.LastCoreOfNUMA(3)
	measure := func() sim.Duration {
		var d sim.Duration
		c.K.Spawn("o", func(p *sim.Proc) {
			start := p.Now()
			nw.SendOverhead(p, n, farCore, 0)
			d = p.Now().Sub(start)
		})
		c.K.Run()
		return d
	}
	quiet := measure()
	// Saturate the link 3→0 with streams from NUMA 3 cores to NUMA 0.
	var cancels []func()
	for i := 0; i < 8; i++ {
		cancels = append(cancels, n.BackgroundStream("hog", 3, 0, 10e9))
	}
	loaded := measure()
	if loaded <= quiet {
		t.Fatalf("far-thread overhead under link load %v not above quiet %v", loaded, quiet)
	}
	for _, cancel := range cancels {
		cancel()
	}
}

func TestMemcpySameNUMAWeightsController(t *testing.T) {
	c, nw := testNet(t)
	n := c.Nodes[0]
	n.Freq.SetUncoreFixed(2.4) // ctrl at 50 GB/s
	var d sim.Duration
	c.K.Spawn("cp", func(p *sim.Proc) {
		start := p.Now()
		// 1.2 GB at copy cap 24 GB/s (weight 2 → 48 GB/s consumed, within
		// the 50 GB/s controller).
		nw.Memcpy(p, n, 0, 0, 0, 12e8)
		d = p.Now().Sub(start)
	})
	c.K.Run()
	if math.Abs(d.Seconds()-0.05) > 1e-3 {
		t.Fatalf("same-NUMA memcpy took %v, want ~0.05s", d)
	}
}

func TestMemcpyCrossNUMAUsesLink(t *testing.T) {
	c, nw := testNet(t)
	n := c.Nodes[0]
	var d sim.Duration
	c.K.Spawn("cp", func(p *sim.Proc) {
		nw.Memcpy(p, n, 0, 0, 3, 12e8)
		d = p.Now().Sub(0)
	})
	c.K.Run()
	if d == 0 {
		t.Fatal("cross-NUMA memcpy did not run")
	}
}

func TestTransferEagerZeroBytesReturns(t *testing.T) {
	c, nw := testNet(t)
	ok := false
	c.K.Spawn("e", func(p *sim.Proc) {
		nw.TransferEager(p, c.Nodes[0], c.Nodes[1], 0)
		ok = true
	})
	c.K.Run()
	if !ok {
		t.Fatal("zero-byte eager transfer blocked")
	}
}

func TestWireSharedByOppositeTransfersIndependently(t *testing.T) {
	c, nw := testNet(t)
	a, b := c.Nodes[0], c.Nodes[1]
	bufA := a.Alloc(64<<20, 0)
	bufB := b.Alloc(64<<20, 0)
	var dAB, dBA sim.Duration
	c.K.Spawn("ab", func(p *sim.Proc) {
		start := p.Now()
		nw.TransferDMA(p, a, bufA, b, bufB, 64<<20)
		dAB = p.Now().Sub(start)
	})
	c.K.Spawn("ba", func(p *sim.Proc) {
		start := p.Now()
		nw.TransferDMA(p, b, bufB, a, bufA, 64<<20)
		dBA = p.Now().Sub(start)
	})
	c.K.Run()
	// Full duplex: opposite directions do not share the wire; both end
	// at wire speed (controllers have headroom for 2×10.9 GB/s).
	for _, d := range []sim.Duration{dAB, dBA} {
		gbps := float64(64<<20) / d.Seconds() / 1e9
		if gbps < 10.0 {
			t.Fatalf("duplex transfer at %.2f GB/s, want ~10.9 each way", gbps)
		}
	}
}
