package net

// Fabric-backed interconnects. NewFabric replaces the legacy full mesh
// of dedicated wires with an explicit switched fabric from
// internal/topology: every directed fabric link becomes one fluid
// resource, and each transfer's path is routed hop by hop, so
// transfers of different jobs contend exactly on the links their
// routes share. A "direct" two-host fabric creates the same resources
// in the same order with the same names and capacities as the legacy
// New — the differential battery in internal/runner holds the two
// byte-identical.

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// NewFabric builds the interconnect of cluster c over the given fabric
// spec. The spec must validate and its host count must equal the
// cluster's node count (hosts and nodes are identified one-to-one).
// When adaptive is true, transfer routing picks the least-loaded
// up-link at each decision, falling back to the minimal choice on ties;
// minimal routing otherwise.
func NewFabric(c *machine.Cluster, spec *topology.FabricSpec, adaptive bool) *Network {
	fab, err := spec.Build()
	if err != nil {
		panic(fmt.Sprintf("net: invalid fabric spec: %v", err))
	}
	if fab.NHosts != len(c.Nodes) {
		panic(fmt.Sprintf("net: fabric has %d hosts, cluster has %d nodes", fab.NHosts, len(c.Nodes)))
	}
	nw := &Network{cluster: c, fab: fab, adaptive: adaptive}
	nw.linkBase = spec.LinkGBs * 1e9
	if spec.LinkGBs == 0 {
		nw.linkBase = c.Spec.NIC.WireGBs * 1e9
	}
	nw.hopLat = spec.HopLatencyNs
	if nw.hopLat == 0 {
		nw.hopLat = topology.DefaultHopLatencyNs
	}
	nw.links = make([]*fluid.Resource, len(fab.Links))
	for i, l := range fab.Links {
		name := fab.LinkName(i)
		if spec.Kind == topology.FabricDirect {
			// The legacy wire names, in the legacy enumeration order.
			name = fmt.Sprintf("wire%d-%d", l.From, l.To)
		}
		nw.links[i] = c.Fluid.NewResource(name, nw.linkBase)
	}
	nw.loadFn = func(li int) float64 { return nw.links[li].Utilization() }
	return nw
}

// Fabric returns the routed fabric, or nil on a legacy full-mesh
// network.
func (nw *Network) Fabric() *topology.Fabric { return nw.fab }

// Link returns the fluid resource of fabric link i (fabric networks
// only).
func (nw *Network) Link(i int) *fluid.Resource { return nw.links[i] }

// Adaptive reports whether transfers route adaptively.
func (nw *Network) Adaptive() bool { return nw.adaptive }

// scaleFabricLinks is the fault injector's wire-scaling callback on
// fabric networks. from < 0 scales every link (in enumeration order —
// deterministic); a directed host pair scales the links of the pair's
// minimal route, the deterministic path a healthy world would use.
func (nw *Network) scaleFabricLinks(from, to int, factor float64) {
	if from < 0 {
		for _, r := range nw.links {
			nw.cluster.Fluid.SetCapacity(r, nw.linkBase*factor)
		}
		return
	}
	nw.routeBuf = nw.fab.Route(from, to, nil, nw.routeBuf)
	for _, li := range nw.routeBuf {
		nw.cluster.Fluid.SetCapacity(nw.links[li], nw.linkBase*factor)
	}
}

// pathUses appends the wire segment of a transfer path from host src
// to host dst: the single dedicated wire on legacy networks, the
// routed multi-hop link sequence on fabrics. Adaptive routing reads
// each candidate link's current fluid utilization at decision time —
// the simulation is single-threaded and deterministic, so the load
// snapshot (and hence the route) is a pure function of simulated
// history.
func (nw *Network) pathUses(uses []fluid.Use, src, dst int) []fluid.Use {
	if nw.fab == nil {
		return append(uses, fluid.Use{Resource: nw.Wire(src, dst), Weight: 1})
	}
	var load topology.LoadFunc
	if nw.adaptive {
		load = nw.loadFn
	}
	nw.routeBuf = nw.fab.Route(src, dst, load, nw.routeBuf)
	for _, li := range nw.routeBuf {
		uses = append(uses, fluid.Use{Resource: nw.links[li], Weight: 1})
	}
	return uses
}

// PathLatency returns the one-way hardware latency from host src to
// host dst: the wire latency on legacy and direct networks, plus one
// hop latency per switch traversed on the minimal route of a switched
// fabric. (Minimal and adaptive routes of a family traverse the same
// number of switches, so latency does not depend on the policy.)
func (nw *Network) PathLatency(src, dst int) sim.Duration {
	if nw.fab == nil || nw.fab.Spec.Kind == topology.FabricDirect {
		return nw.WireLatency()
	}
	nw.routeBuf = nw.fab.Route(src, dst, nil, nw.routeBuf)
	switches := len(nw.routeBuf) - 1
	return nw.WireLatency() + sim.Duration(float64(switches)*nw.hopLat)
}
