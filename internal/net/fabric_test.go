package net

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fluid"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// --- Two-node degeneracy -------------------------------------------------
//
// The "direct" two-host fabric must be indistinguishable from the
// legacy full mesh: same resources, created in the same order, with
// the same names and capacities, so every experiment's event sequence
// is byte-identical. (The runner-level differential test replays whole
// campaigns; this pins the mechanism.)

// transferScript runs a fixed mix of DMA and eager transfers and
// returns every completion instant.
func transferScript(c *machine.Cluster, nw *Network) []sim.Time {
	a, b := c.Nodes[0], c.Nodes[1]
	bufA0 := a.Alloc(8<<20, 0)
	bufA3 := a.Alloc(8<<20, 3)
	bufB0 := b.Alloc(8<<20, 0)
	bufB3 := b.Alloc(8<<20, 3)
	var times []sim.Time
	c.K.Spawn("fwd", func(p *sim.Proc) {
		nw.SendOverhead(p, a, 0, 0)
		nw.TransferDMA(p, a, bufA0, b, bufB3, 8<<20)
		times = append(times, p.Now())
		nw.TransferEager(p, a, b, 1<<16)
		times = append(times, p.Now())
	})
	c.K.Spawn("rev", func(p *sim.Proc) {
		nw.TransferDMA(p, b, bufB0, a, bufA3, 8<<20)
		times = append(times, p.Now())
		nw.RecvOverhead(p, b, 2, 0)
		times = append(times, p.Now())
	})
	c.K.Run()
	return times
}

func TestFabricTwoNodeDegeneratesToLegacy(t *testing.T) {
	legacyC := machine.NewCluster(topology.Henri(), 2, 1)
	legacy := New(legacyC)
	fabC := machine.NewCluster(topology.Henri(), 2, 1)
	fabric := NewFabric(fabC, topology.TwoNodeFabric(), false)

	// Same wire resources: names, capacities, enumeration order.
	for i, want := range []string{"wire0-1", "wire1-0"} {
		if got := fabric.Link(i).Name(); got != want {
			t.Fatalf("fabric link %d named %q, want %q", i, got, want)
		}
	}
	if got, want := fabric.Link(0).Capacity(), legacy.Wire(0, 1).Capacity(); got != want {
		t.Fatalf("fabric link capacity %v, legacy wire %v", got, want)
	}
	if got, want := fabric.PathLatency(0, 1), legacy.WireLatency(); got != want {
		t.Fatalf("fabric path latency %v, legacy wire latency %v", got, want)
	}

	// Same transfer script, bitwise-equal event times.
	lt := transferScript(legacyC, legacy)
	ft := transferScript(fabC, fabric)
	if len(lt) != len(ft) {
		t.Fatalf("script lengths differ: %d vs %d", len(lt), len(ft))
	}
	for i := range lt {
		if lt[i] != ft[i] {
			t.Fatalf("event %d: legacy at %v, two-node fabric at %v", i, lt[i], ft[i])
		}
	}
}

// --- Routing independence ------------------------------------------------
//
// A single job on an idle fabric must be byte-identical under minimal
// and adaptive routing: with every link idle at each decision point,
// adaptive's strict-improvement rule always keeps the minimal choice.

func sequentialTransfers(t *testing.T, preset string, adaptive bool) []sim.Time {
	t.Helper()
	spec := topology.FabricPreset(preset)
	fab := spec.MustBuild()
	c := machine.NewCluster(topology.Henri(), fab.NHosts, 1)
	nw := NewFabric(c, spec, adaptive)
	rng := rand.New(rand.NewSource(7))
	type pair struct{ src, dst int }
	var pairs []pair
	for i := 0; i < 20; i++ {
		s, d := rng.Intn(fab.NHosts), rng.Intn(fab.NHosts)
		if s != d {
			pairs = append(pairs, pair{s, d})
		}
	}
	var times []sim.Time
	c.K.Spawn("job", func(p *sim.Proc) {
		for _, pr := range pairs {
			src, dst := c.Nodes[pr.src], c.Nodes[pr.dst]
			srcBuf := src.Alloc(4<<20, 0)
			dstBuf := dst.Alloc(4<<20, 0)
			p.Sleep(nw.PathLatency(pr.src, pr.dst))
			nw.TransferDMA(p, src, srcBuf, dst, dstBuf, 4<<20)
			times = append(times, p.Now())
		}
	})
	c.K.Run()
	return times
}

func TestFabricRoutingIndependenceOnIdleFabric(t *testing.T) {
	for _, preset := range []string{"fattree-k4", "dflyplus-small"} {
		t.Run(preset, func(t *testing.T) {
			minimal := sequentialTransfers(t, preset, false)
			adaptive := sequentialTransfers(t, preset, true)
			if len(minimal) != len(adaptive) {
				t.Fatalf("transfer counts differ: %d vs %d", len(minimal), len(adaptive))
			}
			for i := range minimal {
				if minimal[i] != adaptive[i] {
					t.Fatalf("transfer %d: minimal at %v, adaptive at %v", i, minimal[i], adaptive[i])
				}
			}
		})
	}
}

// --- Link sharing --------------------------------------------------------

// Two concurrent transfers from different hosts under the same edge
// switch, routed through the same up-link, must each get about half of
// it — the inter-job interference mechanism at its smallest.
func TestFabricSharedUpLinkHalvesThroughput(t *testing.T) {
	spec := topology.FabricPreset("fattree-k4")
	fab := spec.MustBuild()
	c := machine.NewCluster(topology.Henri(), fab.NHosts, 1)
	nw := NewFabric(c, spec, false)
	// Hosts 0 and 1 share edge(0,0); destinations 4 and 6 both hash to
	// aggregation position 0, so both routes cross the same edge→agg
	// up-link (asserted, not assumed).
	r0 := fab.Route(0, 4, nil, nil)
	r1 := fab.Route(1, 6, nil, nil)
	if r0[1] != r1[1] {
		t.Fatalf("routes do not share the up-link: %v vs %v", r0, r1)
	}
	durations := make([]sim.Duration, 2)
	for i, pr := range [][2]int{{0, 4}, {1, 6}} {
		i, pr := i, pr
		src, dst := c.Nodes[pr[0]], c.Nodes[pr[1]]
		srcBuf := src.Alloc(64<<20, 0)
		dstBuf := dst.Alloc(64<<20, 0)
		c.K.Spawn("xfer", func(p *sim.Proc) {
			start := p.Now()
			nw.TransferDMA(p, src, srcBuf, dst, dstBuf, 64<<20)
			durations[i] = p.Now().Sub(start)
		})
	}
	c.K.Run()
	for i, d := range durations {
		gbps := float64(64<<20) / d.Seconds() / 1e9
		if math.Abs(gbps-10.9/2) > 0.3 {
			t.Fatalf("transfer %d ran at %.2f GB/s, want ~%.2f (half the shared up-link)", i, gbps, 10.9/2)
		}
	}
}

func TestFabricPathLatencyCountsSwitches(t *testing.T) {
	spec := topology.FabricPreset("fattree-k4")
	fab := spec.MustBuild()
	c := machine.NewCluster(topology.Henri(), fab.NHosts, 1)
	nw := NewFabric(c, spec, false)
	// Cross-pod: 6 links, 5 switches.
	want := nw.WireLatency() + sim.Duration(5*topology.DefaultHopLatencyNs)
	if got := nw.PathLatency(0, 15); got != want {
		t.Fatalf("cross-pod latency %v, want %v", got, want)
	}
	// Same-edge: 2 links, 1 switch.
	want = nw.WireLatency() + sim.Duration(topology.DefaultHopLatencyNs)
	if got := nw.PathLatency(0, 1); got != want {
		t.Fatalf("same-edge latency %v, want %v", got, want)
	}
}

// --- Property storm (satellite: random fabrics × random flow churn) ------
//
// Drives the fluid model over routed multi-hop paths on random fabrics
// and checks, at every step, per-link bandwidth conservation (own
// bookkeeping of which flows cross each link, never the model's) and
// the max-min optimality of every unfinished flow. This is the
// multi-hop extension of internal/fluid's in-package property storm,
// run entirely through the exported API.

type stormFlow struct {
	flow *fluid.Flow
	path []int // link indices
	cap  float64
}

func randomFabricSpec(rng *rand.Rand) *topology.FabricSpec {
	switch rng.Intn(3) {
	case 0:
		return &topology.FabricSpec{Kind: topology.FabricDirect, Hosts: 2 + rng.Intn(10)}
	case 1:
		return topology.FatTreeFabric(2 * (1 + rng.Intn(3))) // k ∈ {2,4,6}
	default:
		return topology.DflyFabric(2+rng.Intn(3), 1+rng.Intn(2), 1+rng.Intn(3))
	}
}

// checkFabricMaxMin asserts feasibility and bottleneck optimality of
// the current allocation over the fabric links.
func checkFabricMaxMin(t *testing.T, links []*fluid.Resource, flows []*stormFlow) {
	t.Helper()
	load := make([]float64, len(links))
	for _, sf := range flows {
		if sf.flow.Finished() {
			continue
		}
		rate := sf.flow.Rate()
		if rate < 0 || math.IsNaN(rate) {
			t.Fatalf("flow %q has invalid rate %v", sf.flow.Name(), rate)
		}
		if sf.cap > 0 && rate > sf.cap*(1+1e-6) {
			t.Fatalf("flow %q rate %v above its cap %v", sf.flow.Name(), rate, sf.cap)
		}
		for _, li := range sf.path {
			load[li] += rate
		}
	}
	for li, l := range load {
		if cap := links[li].Capacity(); l > cap*(1+1e-6) {
			t.Fatalf("link %q over capacity: routed flows sum to %v > %v", links[li].Name(), l, cap)
		}
	}
	for _, sf := range flows {
		if sf.flow.Finished() {
			continue
		}
		rate := sf.flow.Rate()
		if sf.cap > 0 && rate >= sf.cap*(1-1e-6) {
			continue // cap-limited
		}
		saturated := false
		for _, li := range sf.path {
			if load[li] >= links[li].Capacity()*(1-1e-6) {
				saturated = true
				break
			}
		}
		if !saturated {
			t.Fatalf("flow %q (rate %v, cap %v) neither cap-limited nor bottlenecked on a saturated link",
				sf.flow.Name(), rate, sf.cap)
		}
	}
}

func TestFabricPropertyStorm(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := randomFabricSpec(rng)
		fab := spec.MustBuild()
		k := sim.NewKernel(seed)
		m := fluid.NewModel(k)
		links := make([]*fluid.Resource, len(fab.Links))
		for i := range fab.Links {
			links[i] = m.NewResource(fab.LinkName(i), (1+rng.Float64()*10)*1e9)
		}
		loadOf := func(li int) float64 { return links[li].Utilization() }
		var flows []*stormFlow
		start := func() {
			src, dst := rng.Intn(fab.NHosts), rng.Intn(fab.NHosts)
			if src == dst {
				return
			}
			var load topology.LoadFunc
			if rng.Intn(2) == 0 {
				load = loadOf
			}
			path := fab.Route(src, dst, load, nil)
			spec := fluid.FlowSpec{
				Name: "storm",
				Work: 1e6 + rng.Float64()*1e9,
			}
			if rng.Intn(3) == 0 {
				spec.Cap = (0.5 + rng.Float64()*5) * 1e9
			}
			for _, li := range path {
				spec.Uses = append(spec.Uses, fluid.Use{Resource: links[li], Weight: 1})
			}
			flows = append(flows, &stormFlow{flow: m.Start(spec), path: path, cap: spec.Cap})
		}
		for i := 0; i < 5; i++ {
			start()
		}
		checkFabricMaxMin(t, links, flows)
		for step := 0; step < 40; step++ {
			switch rng.Intn(4) {
			case 0:
				start()
			case 1:
				if len(flows) > 0 {
					i := rng.Intn(len(flows))
					if !flows[i].flow.Finished() {
						m.Cancel(flows[i].flow)
					}
					flows = append(flows[:i], flows[i+1:]...)
				}
			case 2:
				m.SetCapacity(links[rng.Intn(len(links))], (1+rng.Float64()*10)*1e9)
			case 3:
				k.RunUntil(k.Now().Add(sim.Duration(rng.Intn(int(20 * sim.Millisecond)))))
			}
			checkFabricMaxMin(t, links, flows)
		}
	}
}

// --- Fault binding -------------------------------------------------------

func TestFabricInstallFaultsScalesLinks(t *testing.T) {
	spec := topology.FabricPreset("fattree-k4")
	fab := spec.MustBuild()
	c := machine.NewCluster(topology.Henri(), fab.NHosts, 1)
	nw := NewFabric(c, spec, false)
	base := nw.Link(0).Capacity()

	// Exercise the callback InstallFaults binds, through the same
	// signature the injector drives it with.
	nw.scaleFabricLinks(-1, -1, 0.5)
	for i := 0; i < len(fab.Links); i++ {
		if got := nw.Link(i).Capacity(); got != base*0.5 {
			t.Fatalf("link %d capacity %v after all-links degrade, want %v", i, got, base*0.5)
		}
	}
	nw.scaleFabricLinks(-1, -1, 1)
	// Per-pair degrade hits exactly the minimal route's links.
	nw.scaleFabricLinks(0, 15, 0.25)
	route := fab.Route(0, 15, nil, nil)
	onRoute := make(map[int]bool, len(route))
	for _, li := range route {
		onRoute[li] = true
	}
	for i := 0; i < len(fab.Links); i++ {
		want := base
		if onRoute[i] {
			want = base * 0.25
		}
		if got := nw.Link(i).Capacity(); got != want {
			t.Fatalf("link %d capacity %v after pair degrade, want %v", i, got, want)
		}
	}
}
