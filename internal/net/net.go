// Package net models the cluster interconnect: full-duplex wires
// between nodes, the NIC's PIO path for small messages (doorbell +
// descriptor writes by the CPU, sensitive to core frequency, NUMA
// placement and memory-bus contention) and the NIC's DMA path for large
// messages (a fluid flow crossing the data's memory controller, the
// inter-NUMA link when the data is far from the NIC, PCIe and the
// wire, arbitrating against compute streams).
package net

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/fluid"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Network connects the nodes of a cluster with point-to-point
// full-duplex wires (one fluid resource per direction per pair).
type Network struct {
	cluster *machine.Cluster
	wires   map[[2]int]*fluid.Resource // key: [from, to]
	// inj, when non-nil, is the fault injector bound to this network:
	// it scales wire capacities (link degradation) and gates operations
	// on NIC stalls. Nil on healthy worlds — every consult below is
	// nil-guarded so the fault-free path is byte-identical to before the
	// fault subsystem existed.
	inj *fault.Injector

	// useBuf is scratch for assembling per-transfer fluid paths:
	// fluid.Start copies its Uses, so the transfer hot paths build the
	// path in place (the sim kernel never preempts between the build and
	// the Start that consumes it). The exported DMAUses keeps allocating
	// because callers may retain its result.
	useBuf []fluid.Use

	// Lazily cached flow names for the transfer hot paths, so repeated
	// transfers between the same endpoints don't re-Sprintf.
	memcpyNames []string
	dmaNames    map[[2]int]string
	eagerNames  map[[2]int]string

	// Fabric mode (NewFabric): transfers route over an explicit
	// switched topology instead of the dedicated per-pair wires above.
	fab      *topology.Fabric
	links    []*fluid.Resource // one per directed fabric link
	adaptive bool
	loadFn   topology.LoadFunc // links[i].Utilization, for adaptive routing
	routeBuf []int             // scratch for Route (same discipline as useBuf)
	linkBase float64           // healthy per-link capacity, B/s
	hopLat   float64           // per-switch-hop latency, ns
}

// New builds the interconnect for a cluster.
func New(c *machine.Cluster) *Network {
	nw := &Network{cluster: c, wires: make(map[[2]int]*fluid.Resource)}
	for i := range c.Nodes {
		for j := range c.Nodes {
			if i == j {
				continue
			}
			name := fmt.Sprintf("wire%d-%d", i, j)
			nw.wires[[2]int{i, j}] = c.Fluid.NewResource(name, c.Spec.NIC.WireGBs*1e9)
		}
	}
	return nw
}

// Reset rewinds the network to its freshly built state against the
// cluster's (possibly re-bound) spec: the fault injector is unbound and
// every wire or fabric link gets its healthy capacity back. Cached flow
// names survive — they depend only on node ids.
func (nw *Network) Reset() {
	nw.inj = nil
	if nw.fab != nil {
		for _, r := range nw.links {
			nw.cluster.Fluid.SetCapacity(r, nw.linkBase)
		}
		return
	}
	base := nw.cluster.Spec.NIC.WireGBs * 1e9
	for _, r := range nw.wires {
		nw.cluster.Fluid.SetCapacity(r, base)
	}
}

// memcpyName / dmaName / eagerName return the cached flow names of the
// transfer hot paths.
func (nw *Network) memcpyName(id int) string {
	for len(nw.memcpyNames) <= id {
		nw.memcpyNames = append(nw.memcpyNames, "")
	}
	if nw.memcpyNames[id] == "" {
		nw.memcpyNames[id] = fmt.Sprintf("memcpy.n%d", id)
	}
	return nw.memcpyNames[id]
}

func (nw *Network) dmaName(src, dst int) string {
	if nw.dmaNames == nil {
		nw.dmaNames = make(map[[2]int]string)
	}
	key := [2]int{src, dst}
	name, ok := nw.dmaNames[key]
	if !ok {
		name = fmt.Sprintf("dma.n%d->n%d", src, dst)
		nw.dmaNames[key] = name
	}
	return name
}

func (nw *Network) eagerName(src, dst int) string {
	if nw.eagerNames == nil {
		nw.eagerNames = make(map[[2]int]string)
	}
	key := [2]int{src, dst}
	name, ok := nw.eagerNames[key]
	if !ok {
		name = fmt.Sprintf("eager.n%d->n%d", src, dst)
		nw.eagerNames[key] = name
	}
	return name
}

// InstallFaults binds a fault injector to the network: LinkDegrade
// events scale wire capacities (relative to the spec's healthy
// capacity), NICStall events gate the PIO path and transfer starts, and
// the MPI layer above reads the injector back via Faults for loss,
// corruption and comm-thread hangs.
func (nw *Network) InstallFaults(inj *fault.Injector) {
	nw.inj = inj
	if nw.fab != nil {
		inj.BindWires(nw.scaleFabricLinks)
		return
	}
	base := nw.cluster.Spec.NIC.WireGBs * 1e9
	inj.BindWires(func(from, to int, factor float64) {
		if from < 0 { // every wire, in deterministic order
			keys := make([][2]int, 0, len(nw.wires))
			for key := range nw.wires {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i][0] != keys[j][0] {
					return keys[i][0] < keys[j][0]
				}
				return keys[i][1] < keys[j][1]
			})
			for _, key := range keys {
				nw.cluster.Fluid.SetCapacity(nw.wires[key], base*factor)
			}
			return
		}
		nw.cluster.Fluid.SetCapacity(nw.Wire(from, to), base*factor)
	})
}

// Faults returns the installed fault injector, or nil on healthy worlds.
func (nw *Network) Faults() *fault.Injector { return nw.inj }

// gateNIC blocks p while a NIC-stall fault is active on node id.
func (nw *Network) gateNIC(p *sim.Proc, id int) {
	if nw.inj != nil {
		nw.inj.GateNIC(p, id)
	}
}

// Wire returns the directed wire resource from node i to node j.
func (nw *Network) Wire(i, j int) *fluid.Resource {
	w, ok := nw.wires[[2]int{i, j}]
	if !ok {
		panic(fmt.Sprintf("net: no wire %d→%d", i, j))
	}
	return w
}

// WireLatency returns the one-way hardware latency of the interconnect.
func (nw *Network) WireLatency() sim.Duration {
	return sim.Duration(nw.cluster.Spec.NIC.WireLatencyNs)
}

// PIO-path calibration. The software send/recv path performs
// load-dependent round-trips toward the NIC: doorbell/descriptor MMIO
// writes and CQ polling. Two contention couplings apply:
//
//   - the inter-NUMA interconnect toward the NIC: a communication
//     thread bound far from the NIC crosses the UPI, and once computing
//     cores on its socket saturate that link the accesses queue — the
//     mechanism behind Fig 4a's latency doubling from ≈25 cores;
//   - the NIC NUMA node's memory controller: descriptors and CQ entries
//     are DDIO-placed in the LLC, so DRAM pressure leaks into the path
//     only weakly (ddioCtrlCoupling of the controller's queueing).
const ddioCtrlCoupling = 0.15

// pioAccessTime returns the duration of the PIO access mix for one
// operation issued by commCore toward the NIC.
func pioAccessTime(n *machine.Node, commCore int, accesses float64) sim.Duration {
	from := n.Spec.NUMAOfCore(commCore)
	nic := n.Spec.NIC.NUMA
	base := n.Spec.Mem.LocalLatencyNs
	if from != nic {
		base = n.Spec.Mem.RemoteLatencyNs
	}
	f := n.Freq.UncoreGHz()
	base *= 1 + n.Spec.Mem.UncoreLatFactor*(n.Spec.Freq.UncoreMax/f-1)
	extra := ddioCtrlCoupling * n.CtrlContention(nic)
	if from != nic {
		extra += n.LinkContention(from, nic)
	}
	return sim.Duration(base * (1 + extra) * accesses)
}

// payloadAccessTime is the cost of touching the message payload (or
// its cache lines) on its home NUMA node: one access whose DRAM-side
// contention is DDIO-dampened but which queues on the inter-NUMA link
// when the buffer lives on another NUMA node than the communication
// thread. This is what makes "data far from the communication thread"
// visibly slower for small messages (Fig 5b, Fig 8).
func payloadAccessTime(n *machine.Node, commCore, bufNUMA int) sim.Duration {
	from := n.Spec.NUMAOfCore(commCore)
	base := n.Spec.Mem.LocalLatencyNs
	if from != bufNUMA {
		base = n.Spec.Mem.RemoteLatencyNs
	}
	f := n.Freq.UncoreGHz()
	base *= 1 + n.Spec.Mem.UncoreLatFactor*(n.Spec.Freq.UncoreMax/f-1)
	extra := ddioCtrlCoupling * n.CtrlContention(bufNUMA)
	if from != bufNUMA {
		extra += n.LinkContention(from, bufNUMA)
	}
	return sim.Duration(base * (1 + extra))
}

// SendOverhead blocks p for the software overhead (the LogP "o") of
// injecting one message on node n from commCore: fixed CPU cycles at
// the core's current frequency, the PIO access mix toward the NIC, and
// one payload touch on the buffer's NUMA node.
func (nw *Network) SendOverhead(p *sim.Proc, n *machine.Node, commCore, bufNUMA int) {
	nw.gateNIC(p, n.ID)
	n.ExecCycles(p, commCore, n.Spec.NIC.SendCycles)
	p.Sleep(pioAccessTime(n, commCore, n.Spec.NIC.SendMemAccesses) +
		payloadAccessTime(n, commCore, bufNUMA))
}

// RecvOverhead blocks p for the software overhead of completing one
// message reception on node n from commCore.
func (nw *Network) RecvOverhead(p *sim.Proc, n *machine.Node, commCore, bufNUMA int) {
	nw.gateNIC(p, n.ID)
	n.ExecCycles(p, commCore, n.Spec.NIC.RecvCycles)
	p.Sleep(pioAccessTime(n, commCore, n.Spec.NIC.RecvMemAccesses) +
		payloadAccessTime(n, commCore, bufNUMA))
}

// ioScale is the uncore-frequency scaling of the NIC-to-memory I/O
// path (DDIO / IMC ingress queues are uncore-clocked): an uncore pinned
// below its maximum shaves a few percent off the achievable DMA
// throughput — the paper's 10.5 → 10.1 GB/s observation (Fig 1b). With
// the default demand-driven uncore, I/O activity keeps the domain fast
// and the path runs at full speed.
func ioScale(n *machine.Node) float64 {
	if !n.Freq.UncoreIsFixed() {
		return 1
	}
	f := n.Freq.UncoreGHz()
	return 1 - 0.04*(n.Spec.Freq.UncoreMax/f-1)
}

// DMAUses assembles the fluid path of an RDMA transfer of a buffer on
// srcNUMA of node src to a buffer on dstNUMA of node dst: source
// controller (+ link to the NIC when the data is far from it), source
// PCIe, the directed wire, destination PCIe and destination controller
// (+ link).
func (nw *Network) DMAUses(src *machine.Node, srcNUMA int, dst *machine.Node, dstNUMA int) []fluid.Use {
	return nw.dmaUses(make([]fluid.Use, 0, 7), src, srcNUMA, dst, dstNUMA)
}

// dmaUses is DMAUses appending into a caller-supplied buffer (the
// transfer paths pass the network's scratch).
func (nw *Network) dmaUses(buf []fluid.Use, src *machine.Node, srcNUMA int, dst *machine.Node, dstNUMA int) []fluid.Use {
	uses := append(buf, fluid.Use{Resource: src.NUMA(srcNUMA).Ctrl, Weight: 1})
	if srcNUMA != src.Spec.NIC.NUMA {
		uses = append(uses, fluid.Use{Resource: src.Link(srcNUMA, src.Spec.NIC.NUMA), Weight: 1})
	}
	uses = append(uses, fluid.Use{Resource: src.PCIeTx, Weight: 1})
	uses = nw.pathUses(uses, src.ID, dst.ID)
	uses = append(uses,
		fluid.Use{Resource: dst.PCIeRx, Weight: 1},
		fluid.Use{Resource: dst.NUMA(dstNUMA).Ctrl, Weight: 1},
	)
	if dstNUMA != dst.Spec.NIC.NUMA {
		uses = append(uses, fluid.Use{Resource: dst.Link(dstNUMA, dst.Spec.NIC.NUMA), Weight: 1})
	}
	return uses
}

// waitFlow blocks p until the flow completes. On crash-free worlds it
// is a plain signal wait (the historical event sequence). On worlds
// with a crash schedule the wait is crash-aware: if either endpoint
// dies, the frozen in-flight flow is cancelled (the NIC drops it) and
// waitFlow reports false.
func (nw *Network) waitFlow(p *sim.Proc, flow *fluid.Flow, done *sim.Signal, srcID, dstID int) bool {
	if nw.inj == nil || !nw.inj.Crashy() {
		done.Wait(p)
		return true
	}
	unwatch := nw.inj.WatchCrash(done)
	defer unwatch()
	for !flow.Finished() {
		if nw.inj.Crashed(srcID) || nw.inj.Crashed(dstID) {
			nw.cluster.Fluid.Cancel(flow)
			return false
		}
		done.Wait(p)
	}
	return true
}

// TransferDMA moves `bytes` from srcBuf to dstBuf as one zero-copy RDMA
// flow, blocking p until the last byte lands. The flow's arbitration
// priority against core streams grows with the stream census on the
// crossed controllers (DESIGN.md §4). Reports false when a node crash
// at either end dropped the transfer mid-flight (crash schedules only).
func (nw *Network) TransferDMA(p *sim.Proc, src *machine.Node, srcBuf *machine.Buffer,
	dst *machine.Node, dstBuf *machine.Buffer, bytes int64) bool {
	// A stalled NIC at either end delays programming the RDMA engine.
	nw.gateNIC(p, src.ID)
	nw.gateNIC(p, dst.ID)
	pri := (src.DMAPriority(srcBuf.NUMA) + dst.DMAPriority(dstBuf.NUMA)) / 2
	cap := nw.cluster.Spec.NIC.WireGBs * 1e9 * min(ioScale(src), ioScale(dst))
	done := nw.cluster.K.GetSignal()
	nw.useBuf = nw.dmaUses(nw.useBuf[:0], src, srcBuf.NUMA, dst, dstBuf.NUMA)
	flow := nw.cluster.Fluid.Start(fluid.FlowSpec{
		Name:     nw.dmaName(src.ID, dst.ID),
		Work:     float64(bytes),
		Cap:      cap,
		Priority: pri,
		Uses:     nw.useBuf,
		OnDone:   done.BroadcastFn(),
	})
	ok := nw.waitFlow(p, flow, done, src.ID, dst.ID)
	if nw.inj == nil {
		// Healthy worlds: nothing else can reach the finished flow or its
		// completion signal (crashy worlds may still hold both through
		// watchers and frozen-wire bookkeeping, so they keep allocating).
		nw.cluster.K.PutSignal(done)
		nw.cluster.Fluid.Recycle(flow)
	}
	return ok
}

// Memcpy moves `bytes` on node n from srcNUMA to dstNUMA through the
// memory system (read + write: weight 2 on a same-NUMA copy's
// controller). The rate cap is twice the streaming per-core bandwidth:
// eager staging buffers are small and LLC-resident, so the copy runs at
// cache speed while still consuming its share of a contended bus. Used
// by the eager protocol's staging copies.
func (nw *Network) Memcpy(p *sim.Proc, n *machine.Node, core int, srcNUMA, dstNUMA int, bytes int64) {
	if bytes <= 0 {
		return
	}
	if srcNUMA == dstNUMA {
		nw.useBuf = append(nw.useBuf[:0], fluid.Use{Resource: n.NUMA(srcNUMA).Ctrl, Weight: 2})
	} else {
		nw.useBuf = append(nw.useBuf[:0],
			fluid.Use{Resource: n.NUMA(srcNUMA).Ctrl, Weight: 1},
			fluid.Use{Resource: n.NUMA(dstNUMA).Ctrl, Weight: 1},
			fluid.Use{Resource: n.Link(srcNUMA, dstNUMA), Weight: 1},
		)
	}
	done := nw.cluster.K.GetSignal()
	flow := nw.cluster.Fluid.Start(fluid.FlowSpec{
		Name:   nw.memcpyName(n.ID),
		Work:   float64(bytes),
		Cap:    2 * n.Spec.Mem.StreamPerCoreGBs * 1e9,
		Uses:   nw.useBuf,
		OnDone: done.BroadcastFn(),
	})
	done.Wait(p)
	nw.cluster.K.PutSignal(done)
	nw.cluster.Fluid.Recycle(flow)
}

// TransferEager moves `bytes` over the wire into the receiver's
// internal (pre-registered, NIC-NUMA) buffers, blocking p until the
// message has landed there. The sender-side staging copy and the
// receiver-side delivery copy are performed by the caller (mpi) around
// this transfer. The flow crosses both PCIe links, the wire, and the
// NIC-NUMA controllers of both ends. Reports false when a node crash
// dropped the transfer mid-flight (crash schedules only).
func (nw *Network) TransferEager(p *sim.Proc, src, dst *machine.Node, bytes int64) bool {
	if bytes <= 0 {
		return true
	}
	nw.gateNIC(p, src.ID)
	nw.gateNIC(p, dst.ID)
	pri := (src.DMAPriority(src.Spec.NIC.NUMA) + dst.DMAPriority(dst.Spec.NIC.NUMA)) / 2
	cap := nw.cluster.Spec.NIC.WireGBs * 1e9 * min(ioScale(src), ioScale(dst))
	nw.useBuf = append(nw.useBuf[:0],
		fluid.Use{Resource: src.NUMA(src.Spec.NIC.NUMA).Ctrl, Weight: 1},
		fluid.Use{Resource: src.PCIeTx, Weight: 1},
	)
	nw.useBuf = nw.pathUses(nw.useBuf, src.ID, dst.ID)
	nw.useBuf = append(nw.useBuf,
		fluid.Use{Resource: dst.PCIeRx, Weight: 1},
		fluid.Use{Resource: dst.NUMA(dst.Spec.NIC.NUMA).Ctrl, Weight: 1},
	)
	done := nw.cluster.K.GetSignal()
	flow := nw.cluster.Fluid.Start(fluid.FlowSpec{
		Name:     nw.eagerName(src.ID, dst.ID),
		Work:     float64(bytes),
		Cap:      cap,
		Priority: pri,
		Uses:     nw.useBuf,
		OnDone:   done.BroadcastFn(),
	})
	ok := nw.waitFlow(p, flow, done, src.ID, dst.ID)
	if nw.inj == nil {
		nw.cluster.K.PutSignal(done)
		nw.cluster.Fluid.Recycle(flow)
	}
	return ok
}
