package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
)

func TestParseRetryAfter(t *testing.T) {
	cap := 5 * time.Second
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},                               // absent: caller backs off on its own
		{"abc", 0, false},                            // non-numeric
		{"Fri, 07 Aug 2026 00:00:00 GMT", 0, false},  // HTTP-date form: not produced by interfd
		{"-3", 0, false},                             // negative
		{"2", 2 * time.Second, true},                 //
		{"0", 0, true},                               // explicit zero is honored as "now"
		{"0.25", 250 * time.Millisecond, true},       // fractional seconds
		{"86400", cap, true},                         // huge: capped
		{"1e300", cap, true},                         // absurd: float overflow must still cap
		{"9223372036854775807", cap, true},           // int64-overflow territory
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in, cap)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestRemoteCacheRequestTimeout: a daemon that accepts the connection
// and then hangs must not stall a worker shard — the per-request
// timeout turns the hang into an ordinary transient I/O error.
func TestRemoteCacheRequestTimeout(t *testing.T) {
	unblock := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hang until the client gives up and the test tears down
		case <-unblock:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(unblock)
	rc := NewRemoteCache(ts.URL)
	rc.SetRetries(0, time.Millisecond, time.Millisecond)
	rc.SetRequestTimeout(50 * time.Millisecond)
	start := time.Now()
	_, ok, _, ioErr := rc.Load("some/key")
	if ok || !ioErr {
		t.Fatalf("hung Load = ok=%v ioErr=%v, want a clean I/O error", ok, ioErr)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("Load took %v; the request timeout did not fire", el)
	}
	if err := rc.Store("some/key", bench.PointRecord{Schema: bench.PointSchema, Key: "some/key"}); err == nil {
		t.Fatal("hung Store reported success")
	}
}

type denyBudget struct{}

func (denyBudget) Allow() bool { return false }

// TestRemoteCacheBudgetGatesRetries: with an exhausted shared budget
// the per-operation retry count is irrelevant — one attempt, no storm.
func TestRemoteCacheBudgetGatesRetries(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	rc := NewRemoteCache(ts.URL)
	rc.SetRetries(3, time.Millisecond, time.Millisecond)
	rc.SetBudget(denyBudget{})
	if _, _, _, ioErr := rc.Load("k"); !ioErr {
		t.Fatal("failing Load did not report ioErr")
	}
	if hits != 1 {
		t.Fatalf("server saw %d attempts, want 1 (budget must gate retries)", hits)
	}
}

func TestOverloadFairShare(t *testing.T) {
	o := newOverload(chaos.NewFakeClock(), 4, 0, 0, 0)
	for i := 0; i < 4; i++ {
		if !o.reserve("key:a") {
			t.Fatalf("lone client refused at %d of 4", i)
		}
	}
	if o.reserve("key:a") {
		t.Fatal("client admitted past the whole queue")
	}
	if o.shedFair.Load() != 1 {
		t.Fatalf("shedFair = %d", o.shedFair.Load())
	}
	// A second client halves the share — but it holds none of it yet, so
	// it is admitted while the hog is refused.
	if !o.reserve("key:b") {
		t.Fatal("second client refused while the first hogs the queue")
	}
	if o.reserve("key:a") {
		t.Fatal("hog admitted over its share")
	}
	for i := 0; i < 4; i++ {
		o.release("key:a")
	}
	// With the hog gone, b's dynamic share covers the queue again.
	for i := 0; i < 3; i++ {
		if !o.reserve("key:b") {
			t.Fatalf("b refused at outstanding=%d after the hog left", i+1)
		}
	}
	if !o.reserve("") {
		t.Fatal("anonymous client must never be fair-share gated")
	}
}

func TestOverloadDeadlineEstimate(t *testing.T) {
	clk := chaos.NewFakeClock()
	o := newOverload(clk, 64, 0, 0, 0)
	if o.overDeadline(4, 100, time.Second) {
		t.Fatal("refused with no cost history")
	}
	o.observe(100, 2, 1000) // 50 points/exp, 10ms/point
	clk.Advance(time.Second)
	o.observe(100, 2, 1000) // drain: 1 campaign/s
	if est := o.estimateMs(2); est != 1000 {
		t.Fatalf("estimateMs(2) = %v, want 1000", est)
	}
	if w := o.waitMs(3); w != 3000 {
		t.Fatalf("waitMs(3) = %v, want 3000", w)
	}
	if !o.overDeadline(2, 3, 2*time.Second) { // 1000 + 3000 > 2000
		t.Fatal("hopeless deadline admitted")
	}
	if o.overDeadline(2, 0, 2*time.Second) { // 1000 < 2000
		t.Fatal("feasible deadline refused")
	}
	if o.overDeadline(2, 3, 0) {
		t.Fatal("no deadline must mean no deadline gate")
	}
	if o.shedDeadline.Load() != 1 {
		t.Fatalf("shedDeadline = %d", o.shedDeadline.Load())
	}
}

func TestOverloadCoDelLaw(t *testing.T) {
	clk := chaos.NewFakeClock()
	o := newOverload(clk, 64, 2*time.Second, 4*time.Second, 0)
	if o.dequeue(time.Second) {
		t.Fatal("under-target sojourn dropped")
	}
	if o.dequeue(3 * time.Second) {
		t.Fatal("first above-target sojourn must only arm the interval")
	}
	clk.Advance(5 * time.Second)
	if !o.dequeue(3 * time.Second) {
		t.Fatal("sojourn above target for a full interval not dropped")
	}
	// Control law: the next drop threshold is interval/sqrt(1) = 4s out.
	clk.Advance(3 * time.Second)
	if o.dequeue(3 * time.Second) {
		t.Fatal("dropped before the accelerated interval elapsed")
	}
	clk.Advance(2 * time.Second)
	if !o.dequeue(3 * time.Second) {
		t.Fatal("second drop of the episode missing")
	}
	// Recovery: one under-target sojourn ends the episode.
	if o.dequeue(time.Second) {
		t.Fatal("recovered sojourn dropped")
	}
	clk.Advance(10 * time.Second)
	if o.dequeue(3 * time.Second) {
		t.Fatal("post-recovery above-target sojourn must re-arm, not drop")
	}
	if o.shedCodel.Load() != 2 {
		t.Fatalf("shedCodel = %d, want 2", o.shedCodel.Load())
	}
}

func TestOverloadRetryAfterTracksDrain(t *testing.T) {
	clk := chaos.NewFakeClock()
	o := newOverload(clk, 64, 0, 0, 0)
	if got := o.retryAfterSecs(10); got != 1 {
		t.Fatalf("no-history Retry-After = %d, want 1", got)
	}
	o.observe(10, 1, 100)
	clk.Advance(time.Second)
	o.observe(10, 1, 100) // 1 campaign/s drain
	if got := o.retryAfterSecs(5); got != 6 {
		t.Fatalf("Retry-After = %d, want 6 (queue of 5 at 1/s)", got)
	}
	if got := o.retryAfterSecs(100000); got != 60 {
		t.Fatalf("Retry-After = %d, want the 60s clamp", got)
	}
}

// postSpecAs submits a campaign under a client identity and deadline.
func postSpecAs(t *testing.T, url string, spec CampaignSpec, apiKey, deadline string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/campaign", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	if deadline != "" {
		req.Header.Set("X-Deadline", deadline)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	return resp, payload
}

// TestServerFairShareShedding: a client saturating its per-client cap
// gets 503s while a second client's submission is still admitted.
func TestServerFairShareShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 6, MaxInflight: 1, FairShare: 3})
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.runFn = func(c *campaign) *CampaignResponse {
		entered <- struct{}{}
		<-release
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}
	defer close(release)

	spec := func(seed int64) CampaignSpec {
		return CampaignSpec{Experiments: []string{"fig3"}, Seed: seed, Runs: 1}
	}
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	// The hog: one running + two queued = its whole share of 3.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postSpecAs(t, ts.URL, spec(1), "hog", "")
		codes <- resp.StatusCode
	}()
	<-entered
	for i := int64(2); i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postSpecAs(t, ts.URL, spec(i), "hog", "")
			codes <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.queueDepth.Load() == 2 })

	// The hog's fourth campaign is refused — fair share, with an
	// adaptive Retry-After — while a newcomer is admitted: the queue
	// still has room, only the hog's share is spent.
	resp, payload := postSpecAs(t, ts.URL, spec(4), "hog", "")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(payload), "fair share") {
		t.Fatalf("hog's 4th campaign: %d %q", resp.StatusCode, payload)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("fair-share 503 Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postSpecAs(t, ts.URL, spec(5), "newcomer", "")
		codes <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.queueDepth.Load() == 3 })

	for i := 0; i < 4; i++ { // one release per admitted campaign
		release <- struct{}{}
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted campaign answered %d", code)
		}
	}
	if got := s.Metrics().Overload.ShedFairShare; got != 1 {
		t.Fatalf("shed_fair_share = %d, want 1", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition never held")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestServerDeadlineShedding: a deadline the cost model says cannot be
// met is refused up front; a feasible one is served; a malformed one is
// a 400.
func TestServerDeadlineShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, MaxInflight: 1})
	s.runFn = func(c *campaign) *CampaignResponse {
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}
	// Teach the cost model: 1000 points/exp at 10ms each = 10s per
	// single-experiment campaign.
	s.ov.observe(1000, 1, 10000)

	spec := CampaignSpec{Experiments: []string{"fig3"}, Seed: 1, Runs: 1}
	resp, payload := postSpecAs(t, ts.URL, spec, "", "1s")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(payload), "deadline") {
		t.Fatalf("hopeless deadline: %d %q", resp.StatusCode, payload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline 503 has no Retry-After")
	}
	spec.Seed = 2
	if resp, payload := postSpecAs(t, ts.URL, spec, "", "5m"); resp.StatusCode != http.StatusOK {
		t.Fatalf("feasible deadline: %d %q", resp.StatusCode, payload)
	}
	spec.Seed = 3
	if resp, _ := postSpecAs(t, ts.URL, spec, "", "soon"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: %d", resp.StatusCode)
	}
	if resp, _ := postSpecAs(t, ts.URL, spec, "", "-3s"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: %d", resp.StatusCode)
	}
	if got := s.Metrics().Overload.ShedDeadline; got != 1 {
		t.Fatalf("shed_deadline = %d, want 1", got)
	}
}

// TestServerOverloadStorm drives the daemon at ~2x its service capacity
// from four rival clients and asserts the overload controller's
// contract: every refusal is a 503 with an adaptive Retry-After, some
// work still completes for every client, and the latency of what IS
// served stays bounded instead of growing with the backlog.
func TestServerOverloadStorm(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, MaxInflight: 2})
	s.runFn = func(c *campaign) *CampaignResponse {
		time.Sleep(5 * time.Millisecond)
		return &CampaignResponse{ID: c.id, Cluster: c.cluster,
			Cache: CacheSummary{Points: 10}}
	}

	const clients = 4
	const perClient = 12
	type sample struct {
		code int
		ms   float64
	}
	results := make(chan sample, clients*perClient)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				spec := CampaignSpec{Experiments: []string{"fig3"},
					Seed: int64(cl*1000 + i + 1), Runs: 1}
				start := time.Now()
				resp, _ := postSpecAs(t, ts.URL, spec, fmt.Sprintf("client-%d", cl), "")
				el := float64(time.Since(start).Microseconds()) / 1e3
				if resp.StatusCode == http.StatusServiceUnavailable {
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
						t.Errorf("503 Retry-After = %q, want an integer in [1,60]",
							resp.Header.Get("Retry-After"))
					}
				}
				results <- sample{resp.StatusCode, el}
			}
		}()
	}
	wg.Wait()
	close(results)

	var served, shed int
	var latencies []float64
	for r := range results {
		switch r.code {
		case http.StatusOK:
			served++
			latencies = append(latencies, r.ms)
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("storm answer %d, want 200 or 503", r.code)
		}
	}
	if served == 0 {
		t.Fatal("overload shed everything; admission collapsed")
	}
	if served+shed != clients*perClient {
		t.Fatalf("served %d + shed %d != %d", served, shed, clients*perClient)
	}
	sort.Float64s(latencies)
	p99 := latencies[int(0.99*float64(len(latencies)-1))]
	if p99 > 5000 {
		t.Fatalf("p99 of served campaigns = %.0fms; overload control failed to bound latency", p99)
	}
	m := s.Metrics()
	if m.Overload.EstPointMs <= 0 || m.Overload.DrainPerSec <= 0 {
		t.Fatalf("estimators did not learn: %+v", m.Overload)
	}
	t.Logf("storm: served=%d shed=%d p99=%.1fms shed_fair=%d rejected=%d",
		served, shed, p99, m.Overload.ShedFairShare, m.Campaigns.Rejected)
}
