package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// Adaptive overload control. The fixed-size admission queue from PR 6
// answered every overload the same way: 503 with a hardcoded
// Retry-After. Under a 2x-capacity storm that is the worst possible
// policy — every client retries on the same schedule, queue sojourns
// grow without bound for the campaigns that *are* admitted, and one
// greedy client can occupy the whole queue. The overload controller
// replaces it with three cooperating mechanisms, all fed by what the
// daemon actually observes:
//
//   - Deadline-aware admission: the daemon keeps EWMAs of per-point
//     execution cost and points-per-experiment, so a submission's cost
//     is estimated as exps x E[points/exp] x E[ms/point]. A client that
//     sends X-Deadline is refused up front when estimated queue wait +
//     estimated cost cannot fit the deadline — a fast, honest "no"
//     instead of a slow failure that wastes a queue slot.
//
//   - Per-client fair queueing: outstanding campaigns are counted per
//     client (X-API-Key, falling back to the remote address) and each
//     client is capped at its share of the queue, QueueDepth over the
//     number of active clients. One stampeding client saturates its
//     share and gets 503s while everyone else's campaigns keep flowing.
//
//   - CoDel-style staleness drop: at dequeue the controller tracks how
//     long campaigns sat queued. While the sojourn stays above target
//     for a full interval the queue has collapsed into a standing
//     buffer, and the controller sheds the dequeued campaign (the
//     client resubmits against a live Retry-After) on the CoDel control
//     law — successive drops accelerate by 1/sqrt(dropCount) until
//     sojourns fall back under target.
//
// Every 503 carries a Retry-After computed from the observed drain
// rate: (queued+1) / drain campaigns-per-second, clamped — so backoff
// scales with real congestion instead of a constant that is wrong in
// both directions.
type overload struct {
	clock      chaos.Clock
	queueDepth int

	codelTarget   time.Duration
	codelInterval time.Duration
	fairShare     int // fixed per-client cap; 0 = dynamic queueDepth/activeClients

	mu           sync.Mutex
	pointMs      float64 // EWMA ms per executed point
	pointsPerExp float64 // EWMA points per experiment
	drainPerSec  float64 // EWMA campaign completions per second
	lastDone     time.Time
	perClient    map[string]int
	firstAbove   time.Time // CoDel: when the above-target interval expires
	dropCount    int       // CoDel: drops in the current collapse episode

	shedDeadline atomic.Int64 // refused: deadline cannot be met
	shedFair     atomic.Int64 // refused: client over its fair share
	shedCodel    atomic.Int64 // dropped at dequeue: standing-queue collapse
}

// ewmaAlpha weights new observations; ~0.2 keeps estimates responsive
// to regime changes without tracking single-campaign noise.
const ewmaAlpha = 0.2

func newOverload(clock chaos.Clock, queueDepth int, target, interval time.Duration, fairShare int) *overload {
	if target <= 0 {
		target = 2 * time.Second
	}
	if interval <= 0 {
		interval = 2 * target
	}
	return &overload{
		clock:         clock,
		queueDepth:    queueDepth,
		codelTarget:   target,
		codelInterval: interval,
		fairShare:     fairShare,
		perClient:     map[string]int{},
	}
}

func ewma(old, sample float64) float64 {
	if old == 0 {
		return sample
	}
	return old + ewmaAlpha*(sample-old)
}

// reserve admits one outstanding campaign for a client, or refuses it
// when the client already holds its fair share of the queue. The share
// is dynamic: queueDepth divided by the number of currently active
// clients (clients with zero outstanding work stop counting), never
// below 1 — a lone client may use the whole queue, two rivals get half
// each.
func (o *overload) reserve(client string) bool {
	if client == "" {
		return true
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	share := o.fairShare
	if share <= 0 {
		active := len(o.perClient)
		if o.perClient[client] == 0 {
			active++
		}
		share = o.queueDepth / active
		if share < 1 {
			share = 1
		}
	}
	if o.perClient[client] >= share {
		o.shedFair.Add(1)
		return false
	}
	o.perClient[client]++
	return true
}

// release returns a client's reservation (campaign finished or shed).
func (o *overload) release(client string) {
	if client == "" {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.perClient[client] <= 1 {
		delete(o.perClient, client)
	} else {
		o.perClient[client]--
	}
}

// estimateMs predicts one campaign's execution cost from the cost
// EWMAs; 0 means "no history yet" and admission stays optimistic.
func (o *overload) estimateMs(exps int) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return float64(exps) * o.pointsPerExp * o.pointMs
}

// waitMs predicts the queue wait ahead of a new submission from the
// observed drain rate.
func (o *overload) waitMs(queued int64) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.drainPerSec <= 0 {
		return 0
	}
	return float64(queued) / o.drainPerSec * 1e3
}

// overDeadline reports whether a campaign with the given client
// deadline is predicted to miss it (estimated wait + estimated cost),
// in which case admission refuses it immediately.
func (o *overload) overDeadline(exps int, queued int64, deadline time.Duration) bool {
	if deadline <= 0 {
		return false
	}
	est := o.estimateMs(exps) + o.waitMs(queued)
	if est <= 0 {
		return false
	}
	if est > float64(deadline.Milliseconds()) {
		o.shedDeadline.Add(1)
		return true
	}
	return false
}

// dequeue applies the CoDel control law to one campaign leaving the
// queue after sojourn. It returns true when the campaign should be
// shed: sojourns have stayed above target for a full interval, so the
// queue is a standing buffer and draining it by serving ever-staler
// work only makes every client slower.
func (o *overload) dequeue(sojourn time.Duration) (drop bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.clock.Now()
	if sojourn < o.codelTarget {
		o.firstAbove = time.Time{}
		o.dropCount = 0
		return false
	}
	if o.firstAbove.IsZero() {
		o.firstAbove = now.Add(o.codelInterval)
		return false
	}
	if now.Before(o.firstAbove) {
		return false
	}
	o.dropCount++
	o.firstAbove = now.Add(time.Duration(float64(o.codelInterval) / math.Sqrt(float64(o.dropCount))))
	o.shedCodel.Add(1)
	return true
}

// observe feeds one completed campaign back into the estimators.
func (o *overload) observe(points int64, exps int, execMs float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if exps > 0 && points > 0 {
		o.pointsPerExp = ewma(o.pointsPerExp, float64(points)/float64(exps))
		o.pointMs = ewma(o.pointMs, execMs/float64(points))
	}
	now := o.clock.Now()
	if !o.lastDone.IsZero() {
		if dt := now.Sub(o.lastDone).Seconds(); dt > 0 {
			o.drainPerSec = ewma(o.drainPerSec, 1/dt)
		}
	}
	o.lastDone = now
}

// retryAfterSecs computes the Retry-After for a 503: how long until the
// queue ahead of the client has drained at the observed rate, clamped
// to [1, 60] seconds. With no drain history it answers 1 — optimistic,
// but the next rejection will know better.
func (o *overload) retryAfterSecs(queued int64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.drainPerSec <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(queued+1) / o.drainPerSec))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// snapshot reports the controller's state for /metrics.
func (o *overload) snapshot() (pointMs, pointsPerExp, drainPerSec float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pointMs, o.pointsPerExp, o.drainPerSec
}
