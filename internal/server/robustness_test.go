package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestServerDrainLifecycle: BeginDrain closes admission (503 on
// /campaign, /healthz and /readyz report draining) while the in-flight
// campaign finishes; Drain — polled on the chaos clock — returns once
// the queue is empty, and the drain rejections are counted.
func TestServerDrainLifecycle(t *testing.T) {
	clock := chaos.NewFakeClock()
	s, ts := newTestServer(t, Config{Clock: clock})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.runFn = func(c *campaign) *CampaignResponse {
		close(entered)
		<-release
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}

	first := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(CampaignSpec{Experiments: []string{"fig3"}, Runs: 1})
		resp, err := http.Post(ts.URL+"/campaign", "application/json", bytes.NewReader(body))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered

	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	s.BeginDrain()
	if code, body := getStatus(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz while draining: %d %q", code, body)
	}
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz while draining: %d %q", code, body)
	}

	// New submissions are refused without touching the queue.
	body, _ := json.Marshal(CampaignSpec{Experiments: []string{"ext-sched"}, Runs: 1})
	resp, err := http.Post(ts.URL+"/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(payload), "draining") {
		t.Fatalf("submission while draining: %d %q", resp.StatusCode, payload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection has no Retry-After")
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	// Drain is polling on the fake clock; it cannot finish while the
	// campaign is parked.
	for clock.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain finished with a campaign in flight: %v", err)
	default:
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight campaign during drain: %d", code)
	}
	deadline := time.After(5 * time.Second)
	for {
		clock.Advance(5 * time.Millisecond)
		select {
		case err := <-drained:
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
			m := s.Metrics()
			if !m.Robustness.Draining || m.Robustness.DrainRejected != 1 {
				t.Fatalf("robustness metrics after drain: %+v", m.Robustness)
			}
			return
		case <-deadline:
			t.Fatal("drain never completed after the campaign finished")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestServerDrainTimeoutRecovery: a drain that times out leaves the
// unfinished campaign "accepted" in the state log; the next daemon on
// the same state recovers and completes it.
func TestServerDrainTimeoutRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CacheDir: filepath.Join(dir, "cache"),
		StateDir: filepath.Join(dir, "state"),
		Shards:   2,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	a.runFn = func(c *campaign) *CampaignResponse {
		close(entered)
		<-release
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}
	spec := CampaignSpec{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1}
	c, err := compile(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	go a.submit(c)
	<-entered

	a.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); err == nil || !strings.Contains(err.Error(), "unfinished") {
		t.Fatalf("drain with a stuck campaign: %v, want an unfinished-campaigns error", err)
	}
	// The operator gives up and kills the process mid-campaign.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	close(release)

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.Recovering(); got != 1 {
		t.Fatalf("recovering %d campaigns after an aborted drain, want 1", got)
	}
	b.WaitRecovery()
	if m := b.Metrics(); m.Campaigns.Completed != 1 {
		t.Fatalf("recovered campaign did not complete: %+v", m.Campaigns)
	}
}

// TestServerCampaignTimeout: a campaign that exceeds the server's
// deadline fails its remaining experiments fast, is flagged TimedOut,
// and ticks the timeout counter — the daemon moves on to other work.
func TestServerCampaignTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{CampaignTimeout: time.Nanosecond})
	code, _, cr := postSpec(t, ts.URL, CampaignSpec{Experiments: []string{"fig3"}, Runs: 1})
	if code != http.StatusOK {
		t.Fatalf("timed-out campaign status %d, want 200 with per-experiment errors", code)
	}
	if !cr.TimedOut {
		t.Fatal("response not flagged TimedOut")
	}
	if cr.Errors == 0 {
		t.Fatal("expired deadline produced no experiment errors")
	}
	for _, er := range cr.Results {
		if er.Error != "" && !strings.Contains(er.Error, "cancelled") {
			t.Fatalf("experiment error %q does not mention cancellation", er.Error)
		}
	}
	if m := s.Metrics(); m.Robustness.TimedOutCampaigns != 1 {
		t.Fatalf("timed_out_campaigns = %d, want 1", m.Robustness.TimedOutCampaigns)
	}
}

// TestServerReadyzQueueFull: /readyz steers load away when the
// admission queue is saturated, while /healthz stays green.
func TestServerReadyzQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	s.runFn = func(c *campaign) *CampaignResponse {
		close(entered)
		<-release
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz idle: %d %q", code, body)
	}
	go func() {
		body, _ := json.Marshal(CampaignSpec{Experiments: []string{"fig3"}, Runs: 1})
		resp, err := http.Post(ts.URL+"/campaign", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "queue full") {
		t.Fatalf("readyz with a full queue: %d %q", code, body)
	}
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz with a full queue: %d", code)
	}
}

// TestStateLogSkipsMidFileCorruption: a corrupt record in the middle of
// the campaign log (torn write isolated on its own line) is skipped and
// counted; the accepted campaigns on either side are still recovered.
func TestStateLogSkipsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	c1, err := compile(CampaignSpec{Experiments: []string{"ext-sched"}, Runs: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compile(CampaignSpec{Experiments: []string{"fig3"}, Runs: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := json.Marshal(stateEntry{Schema: stateSchema, ID: c1.id, Status: "accepted", Spec: &c1.spec})
	e2, _ := json.Marshal(stateEntry{Schema: stateSchema, ID: c2.id, Status: "accepted", Spec: &c2.spec})
	log := string(e1) + "\n" + `{"schema":1,"id":"torn-in-the-mi` + "\n" + string(e2) + "\n"
	if err := os.WriteFile(filepath.Join(stateDir, "campaigns.jsonl"), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{StateDir: stateDir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Recovering(); got != 2 {
		t.Fatalf("recovering %d campaigns, want both sides of the corrupt record", got)
	}
	s.WaitRecovery()
	m := s.Metrics()
	if m.Campaigns.Completed != 2 {
		t.Fatalf("recovered campaigns did not complete: %+v", m.Campaigns)
	}
	if m.Robustness.CampaignLogSkipped != 1 {
		t.Fatalf("campaign_log_skipped_records = %d, want 1", m.Robustness.CampaignLogSkipped)
	}
}

// TestServerJournalFailureDegradesGracefully: when every journal append
// fails (dead disk under the state dir), campaigns still serve correct
// results — flagged DurabilityLost, counted as durability warnings —
// instead of failing.
func TestServerJournalFailureDegradesGracefully(t *testing.T) {
	inj := chaos.NewInjector(1, mustChaosSpec(t, "eio-write:match=journal.jsonl"))
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		CacheDir: filepath.Join(dir, "cache"),
		StateDir: filepath.Join(dir, "state"),
		FS:       chaos.Flaky(chaos.OS(), inj),
	})
	want := localRendered(t, "henri", 1, 1, "ext-sched")
	code, body, cr := postSpec(t, ts.URL, CampaignSpec{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1})
	if code != http.StatusOK {
		t.Fatalf("campaign under journal failure: %d: %s", code, body)
	}
	if cr.Errors != 0 {
		t.Fatalf("journal failure caused %d experiment errors; durability loss must not fail results", cr.Errors)
	}
	if cr.Results[0].Rendered != want[0] {
		t.Fatal("output drifted under journal failure")
	}
	if !cr.Results[0].DurabilityLost {
		t.Fatal("result not flagged DurabilityLost")
	}
	if m := s.Metrics(); m.Robustness.DurabilityWarnings == 0 {
		t.Fatalf("durability_warnings = 0: %+v", m.Robustness)
	}
}

func mustChaosSpec(t *testing.T, spec string) *chaos.Schedule {
	t.Helper()
	s, err := chaos.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
