package server

import (
	"net/http"
	"path/filepath"
	"testing"
)

// TestServerFabricMatchesLocal completes the multi-job determinism
// lock: the fabric-interference campaign (3 concurrent jobs on one
// shared fat-tree) served by the daemon — cold cache, then fully
// replayed warm — must render byte-identically to the in-process run.
// Together with the runner-level worker-count and cache-state sweeps
// this covers every execution mode the harness offers.
func TestServerFabricMatchesLocal(t *testing.T) {
	want := localRendered(t, "henri", 1, 1, "fabric-interference", "fabric-pingpong")
	_, ts := newTestServer(t, Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	spec := CampaignSpec{Experiments: []string{"fabric-interference", "fabric-pingpong"}, Seed: 1, Runs: 1}
	for _, phase := range []string{"cold", "warm"} {
		code, body, cr := postSpec(t, ts.URL, spec)
		if code != http.StatusOK {
			t.Fatalf("%s submit: %d: %s", phase, code, body)
		}
		if cr.Errors != 0 || len(cr.Results) != 2 {
			t.Fatalf("%s response: %d errors, %d results", phase, cr.Errors, len(cr.Results))
		}
		for i, er := range cr.Results {
			if er.Rendered != want[i] {
				t.Errorf("%s %s differs from the local run:\n got %q\nwant %q", phase, er.ID, er.Rendered, want[i])
			}
		}
	}
}
