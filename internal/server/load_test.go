package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// loadEnvInt reads a sizing knob from the environment so CI can shrink
// the storm without editing the test.
func loadEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// comparableResult is the deterministic slice of an ExperimentResult:
// everything except wall-clock timings, which legitimately vary between
// a computed and a cache-served campaign.
type comparableResult struct {
	ID         string
	Rendered   string
	Error      string
	SimSeconds float64
	Worlds     int
	Tables     int
	Rows       int
}

func comparableView(cr *CampaignResponse) string {
	var out []comparableResult
	for _, er := range cr.Results {
		out = append(out, comparableResult{
			ID: er.ID, Rendered: er.Rendered, Error: er.Error,
			SimSeconds: er.SimSeconds, Worlds: er.Worlds, Tables: er.Tables, Rows: er.Rows,
		})
	}
	b, _ := json.Marshal(out)
	return string(b)
}

// TestServerLoad is the concurrency battery: many clients hammer one
// daemon with overlapping campaign specs and the test demands
//
//  1. every identical spec yields an identical (deterministic-field)
//     response, no matter which client asked or when;
//  2. the shared point pool + singleflight computed every distinct
//     point exactly once across the whole storm — the union U of
//     distinct points is measured first by a serial phase, and the
//     concurrent phase's total cache misses must equal U exactly;
//  3. the p99 campaign latency stays within a (generous) bound and the
//     admission queue never rejected anything (it is sized for the
//     storm).
//
// Size with SERVER_LOAD_CLIENTS and SERVER_LOAD_PER_CLIENT; runs under
// -race in CI with reduced numbers.
func TestServerLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load storm; skipped with -short")
	}
	clients := loadEnvInt("SERVER_LOAD_CLIENTS", 8)
	perClient := loadEnvInt("SERVER_LOAD_PER_CLIENT", 25)

	// Overlapping specs: the third shares every point with the first
	// two, the fourth shares nothing (different seed ⇒ different base
	// key).
	specs := []CampaignSpec{
		{Experiments: []string{"fig3"}, Seed: 1, Runs: 1},
		{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3", "ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3"}, Seed: 2, Runs: 1},
	}

	// Phase 1 — serial, fresh daemon: measure the union of distinct
	// points. Submitting each spec once in sequence makes every first
	// sighting of a point a miss and every overlap a hit, so the
	// daemon-wide miss counter afterwards *is* |U|.
	serial, serialURL := newLoadServer(t, clients*perClient)
	want := make([]string, len(specs))
	for i, spec := range specs {
		code, body, cr := postSpec(t, serialURL, spec)
		if code != http.StatusOK {
			t.Fatalf("serial spec %d: %d: %s", i, code, body)
		}
		if cr.Errors != 0 {
			t.Fatalf("serial spec %d: %d experiment errors", i, cr.Errors)
		}
		want[i] = comparableView(cr)
	}
	union := serial.Metrics().Cache.Misses
	if union == 0 {
		t.Fatal("serial phase computed nothing")
	}
	if overlap := serial.Metrics().Cache; overlap.Hits+overlap.MemoHits == 0 {
		t.Fatalf("specs do not overlap — the dedup assertion would be vacuous: %+v", overlap)
	}

	// Phase 2 — the storm, against a second fresh daemon with an empty
	// cache: clients × campaigns all at once.
	storm, stormURL := newLoadServer(t, clients*perClient)
	total := clients * perClient
	type outcome struct {
		spec int
		code int
		body string
		cmp  string
	}
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				idx := (c + k) % len(specs)
				code, body, cr := postSpec(t, stormURL, specs[idx])
				o := outcome{spec: idx, code: code, body: string(body)}
				if cr != nil {
					o.cmp = comparableView(cr)
				}
				outcomes[c*perClient+k] = o
			}
		}()
	}
	wg.Wait()

	for i, o := range outcomes {
		if o.code != http.StatusOK {
			t.Fatalf("storm submission %d (spec %d): %d: %s", i, o.spec, o.code, o.body)
		}
		if o.cmp != want[o.spec] {
			t.Fatalf("storm submission %d: response for spec %d differs from the serial run:\n got %s\nwant %s",
				i, o.spec, o.cmp, want[o.spec])
		}
	}

	m := storm.Metrics()
	// The core exactly-once claim: across `total` campaigns sharing
	// points, only the |U| distinct points were ever executed. Everything
	// else was served by the disk cache, the per-campaign memo, the
	// cross-campaign point flight, or campaign-level dedup.
	if m.Cache.Misses != union {
		t.Fatalf("storm executed %d points, want exactly the union %d (stats %+v)", m.Cache.Misses, union, m.Cache)
	}
	if got := m.Campaigns.Accepted + m.Campaigns.Deduped; got != int64(total) {
		t.Fatalf("accepted %d + deduped %d != %d submissions", m.Campaigns.Accepted, m.Campaigns.Deduped, total)
	}
	if m.Campaigns.Rejected != 0 {
		t.Fatalf("queue sized for the storm still rejected %d campaigns", m.Campaigns.Rejected)
	}
	if m.Campaigns.QueueDepth != 0 || m.Campaigns.Inflight != 0 {
		t.Fatalf("storm left work behind: %+v", m.Campaigns)
	}
	// Generous sanity bound — this is a laptop-class assertion, not a
	// benchmark; the real latency numbers land in BENCH_sim.json.
	const p99BoundMs = 120_000
	if m.Latency.P99Ms <= 0 || m.Latency.P99Ms > p99BoundMs {
		t.Fatalf("p99 campaign latency %.1fms outside (0, %d]", m.Latency.P99Ms, p99BoundMs)
	}
	t.Logf("storm: %d campaigns from %d clients, %d distinct points computed once, p50 %.1fms p99 %.1fms, %d campaign dedups, %d flight hits",
		total, clients, union, m.Latency.P50Ms, m.Latency.P99Ms, m.Campaigns.Deduped, m.Cache.FlightHits)
}

// newLoadServer builds a daemon whose queue can absorb an entire storm
// (the load test asserts zero rejections; admission-control behaviour
// has its own test).
func newLoadServer(t *testing.T, storm int) (*Server, string) {
	t.Helper()
	s, ts := newTestServer(t, Config{
		CacheDir:    filepath.Join(t.TempDir(), fmt.Sprintf("cache-%d", storm)),
		Shards:      4,
		QueueDepth:  storm + 8,
		MaxInflight: 4,
	})
	return s, ts.URL
}
