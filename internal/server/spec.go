package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/topology"
)

// Validation bounds. A campaign spec is hostile input: the daemon is
// long-lived and one oversized grid must not wedge the queue for every
// other client, so the decoder rejects anything outside these limits
// with a 4xx before a single point is scheduled.
const (
	// maxSpecBytes bounds the request body (an inline topology spec is a
	// few KB; the rest of the spec is tiny).
	maxSpecBytes = 1 << 20
	// maxExperiments bounds the experiment list; "all" expands to the
	// registry, which is far below this.
	maxExperiments = 256
	// maxExperimentID bounds one experiment name.
	maxExperimentID = 128
	// defaultMaxRuns bounds the per-configuration repetition count
	// (Config.MaxRuns overrides); the paper's campaigns use 3.
	defaultMaxRuns = 64
)

// CampaignSpec is the wire format of one campaign submission: the same
// knobs `cmd/interference` exposes as flags, as one JSON object.
type CampaignSpec struct {
	// Cluster names a preset (henri, bora, billy, pyxis); ignored when
	// Spec carries an inline machine description.
	Cluster string `json:"cluster,omitempty"`
	// Spec, when non-nil, is a full inline machine spec (see `topo
	// -json`); it is validated with the same bounds as a -spec file.
	Spec *topology.NodeSpec `json:"spec,omitempty"`
	// Experiments lists experiment IDs in output order; "all" and
	// "faults" expand as in the CLI.
	Experiments []string `json:"experiments"`
	Seed        int64    `json:"seed"`
	Runs        int      `json:"runs"`
	// Format is "ascii" (default) or "csv".
	Format string `json:"format,omitempty"`
	// Faults is a fault-schedule spec (see fault.ParseSpec).
	Faults string `json:"faults,omitempty"`
}

// campaign is a validated, normalized submission ready to execute.
type campaign struct {
	spec    CampaignSpec // normalized: defaults applied, experiments resolved
	id      string       // sha256 of the normalized spec: identical submissions collide
	cluster string       // journal cluster label (preset name or inline spec name)
	exps    []core.Experiment
	env     bench.Env

	// Admission metadata (not part of the campaign identity): the
	// fair-queueing client key, the client's X-Deadline, and whether
	// this is an internal submission (startup recovery) that must not
	// be shed by the overload controller.
	client   string
	deadline time.Duration
	internal bool
}

// parseSpec decodes and validates one submission. Every error is a
// client error (the daemon maps them to 400); the decoder is strict —
// unknown fields, trailing garbage, or out-of-bounds values are
// rejected, never silently ignored.
func parseSpec(r io.Reader, maxRuns int) (*campaign, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes+1))
	dec.DisallowUnknownFields()
	var spec CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decoding campaign spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign spec has trailing data after the JSON object")
	}
	return compile(spec, maxRuns)
}

// compile validates a decoded spec and resolves it against the
// experiment registry.
func compile(spec CampaignSpec, maxRuns int) (*campaign, error) {
	if maxRuns <= 0 {
		maxRuns = defaultMaxRuns
	}
	c := &campaign{spec: spec}

	if c.spec.Runs == 0 {
		c.spec.Runs = 3
	}
	if c.spec.Runs < 1 || c.spec.Runs > maxRuns {
		return nil, fmt.Errorf("runs %d out of range [1,%d]", c.spec.Runs, maxRuns)
	}
	if c.spec.Format == "" {
		c.spec.Format = "ascii"
	}
	if c.spec.Format != "ascii" && c.spec.Format != "csv" {
		return nil, fmt.Errorf("unknown format %q (want ascii or csv)", c.spec.Format)
	}

	if c.spec.Spec != nil {
		if err := c.spec.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("inline machine spec: %w", err)
		}
		c.cluster = c.spec.Spec.Name
		c.spec.Cluster = ""
		c.env = bench.Env{Spec: c.spec.Spec, Seed: c.spec.Seed, Runs: c.spec.Runs}
	} else {
		if c.spec.Cluster == "" {
			c.spec.Cluster = "henri"
		}
		env, err := core.Env(c.spec.Cluster, c.spec.Seed, c.spec.Runs)
		if err != nil {
			return nil, err
		}
		c.cluster = c.spec.Cluster
		c.env = env
	}

	if c.spec.Faults != "" {
		sched, err := fault.ParseSpec(c.spec.Faults)
		if err != nil {
			return nil, err
		}
		c.env.Faults = sched
	}

	if len(c.spec.Experiments) == 0 {
		return nil, fmt.Errorf("campaign spec lists no experiments")
	}
	if len(c.spec.Experiments) > maxExperiments {
		return nil, fmt.Errorf("campaign spec lists %d experiments (limit %d)", len(c.spec.Experiments), maxExperiments)
	}
	var resolved []string
	for _, id := range c.spec.Experiments {
		if len(id) > maxExperimentID {
			return nil, fmt.Errorf("experiment ID longer than %d bytes", maxExperimentID)
		}
		switch id {
		case "all":
			for _, e := range core.Experiments() {
				c.exps = append(c.exps, e)
				resolved = append(resolved, e.ID)
			}
		case "faults":
			for _, fid := range core.FaultFamily() {
				e, _ := core.ByID(fid)
				c.exps = append(c.exps, e)
				resolved = append(resolved, e.ID)
			}
		default:
			e, ok := core.ByID(id)
			if !ok {
				return nil, fmt.Errorf("unknown experiment %q", id)
			}
			c.exps = append(c.exps, e)
			resolved = append(resolved, e.ID)
		}
		if len(c.exps) > maxExperiments {
			return nil, fmt.Errorf("campaign expands to %d experiments (limit %d)", len(c.exps), maxExperiments)
		}
	}
	c.spec.Experiments = resolved

	// The campaign ID is content-addressed over the normalized spec, so
	// byte-different but semantically identical submissions (defaults
	// spelled out, "all" expanded) share one identity — and therefore
	// one execution when they race (see Server.submit).
	canon, err := json.Marshal(c.spec)
	if err != nil {
		return nil, fmt.Errorf("canonicalizing campaign spec: %w", err)
	}
	sum := sha256.Sum256(canon)
	c.id = hex.EncodeToString(sum[:])
	return c, nil
}
