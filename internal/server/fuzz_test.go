package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// FuzzSubmitSpec throws arbitrary bytes at the campaign-submission
// decoder through the real HTTP handler. The daemon is long-lived: a
// hostile spec may be refused (4xx) but must never panic the handler,
// produce a 5xx, or wedge the admission queue for later clients.
// Execution is stubbed out — the fuzz target probes parsing and
// admission, not the simulator.
func FuzzSubmitSpec(f *testing.F) {
	// Valid seeds derived from the checked-in goldens: every
	// "<experiment>-<cluster>.txt" under results/ names a combination a
	// real client submits.
	goldens, _ := os.ReadDir("../../results")
	seeded := 0
	for _, g := range goldens {
		name, ok := strings.CutSuffix(g.Name(), ".txt")
		if !ok {
			continue
		}
		i := strings.LastIndex(name, "-")
		if i <= 0 {
			continue
		}
		exp, cluster := name[:i], name[i+1:]
		f.Add([]byte(fmt.Sprintf(`{"cluster":%q,"experiments":[%q],"seed":1,"runs":1}`, cluster, exp)))
		seeded++
	}
	if seeded == 0 {
		f.Fatal("no golden files found to seed the corpus from")
	}
	// Hand-written hostile seeds: each one exercises a distinct refusal
	// path the fuzzer should mutate around.
	for _, seed := range []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"experiments":[]}`,
		`{"experiments":["all"]}`,
		`{"experiments":["faults"],"faults":"loss:p=0.1"}`,
		`{"experiments":["fig3"],"runs":-1}`,
		`{"experiments":["fig3"],"runs":1e9}`,
		`{"experiments":["fig3"],"seed":1e999}`,
		`{"experiments":["fig3"],"format":"<script>"}`,
		`{"experiments":["fig3"],"bogus":true}`,
		`{"experiments":["fig3"]} trailing`,
		`{"cluster":"../../../etc/passwd","experiments":["fig3"]}`,
		`{"spec":{"name":"x"},"experiments":["fig3"]}`,
		`{"experiments":[` + strings.Repeat(`"fig3",`, 300) + `"fig3"]}`,
		`{"experiments":["` + strings.Repeat("A", 1024) + `"]}`,
		strings.Repeat(`{"experiments":`, 256),
	} {
		f.Add([]byte(seed))
	}

	s, err := New(Config{Shards: 1, QueueDepth: 4, MaxInflight: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	s.runFn = func(c *campaign) *CampaignResponse {
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/campaign", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // a panic here fails the fuzz run
		if c := w.Code; c != http.StatusOK && (c < 400 || c > 499) {
			t.Fatalf("status %d for spec %q (want 200 or 4xx)", c, body)
		}
		if w.Code != http.StatusOK && w.Body.Len() == 0 {
			t.Fatalf("refusal without a reason for spec %q", body)
		}
		m := s.Metrics()
		if m.Campaigns.QueueDepth != 0 || m.Campaigns.Inflight != 0 {
			t.Fatalf("queue wedged after spec %q: %+v", body, m.Campaigns)
		}
	})
}
