package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/runner"
)

// CampaignResponse is the wire format of one served campaign: the
// results in submission order plus the campaign's cache accounting.
type CampaignResponse struct {
	// ID is the content-addressed campaign identity (identical
	// normalized specs share it).
	ID      string `json:"id"`
	Cluster string `json:"cluster"`
	// Deduped marks a response served by joining an identical in-flight
	// campaign instead of executing.
	Deduped bool               `json:"deduped,omitempty"`
	Results []ExperimentResult `json:"results"`
	Errors  int                `json:"errors,omitempty"`
	Cache   CacheSummary       `json:"cache"`
	// WallMs is the campaign's server-side latency, queue wait included.
	WallMs float64 `json:"wall_ms"`
}

// ExperimentResult mirrors runner.Result across the wire.
type ExperimentResult struct {
	ID       string `json:"id"`
	Rendered string `json:"rendered,omitempty"`
	Error    string `json:"error,omitempty"`
	// Cached marks a result replayed from the daemon's journal.
	Cached     bool              `json:"cached,omitempty"`
	SimSeconds float64           `json:"sim_seconds"`
	Worlds     int               `json:"worlds"`
	Tables     int               `json:"tables"`
	Rows       int               `json:"rows"`
	Attempts   int               `json:"attempts"`
	WallMs     float64           `json:"wall_ms"`
	Faults     bench.FaultTotals `json:"faults"`
}

// CacheSummary is a CacheStats snapshot in wire form.
type CacheSummary struct {
	Points     int64   `json:"points"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	MemoHits   int64   `json:"memo_hits"`
	FlightHits int64   `json:"flight_hits"`
	Mismatches int64   `json:"mismatches"`
	Errors     int64   `json:"errors"`
	HitRate    float64 `json:"hit_rate"`
}

func summarize(s *runner.CacheStats) CacheSummary {
	return CacheSummary{
		Points:     s.Points(),
		Hits:       atomic.LoadInt64(&s.Hits),
		Misses:     atomic.LoadInt64(&s.Misses),
		MemoHits:   atomic.LoadInt64(&s.MemoHits),
		FlightHits: atomic.LoadInt64(&s.FlightHits),
		Mismatches: atomic.LoadInt64(&s.Mismatches),
		Errors:     atomic.LoadInt64(&s.Errors),
		HitRate:    s.HitRate(),
	}
}

// protoCounters counts remote cache protocol traffic.
type protoCounters struct {
	gets, getHits, puts, rejected atomic.Int64
}

// latencyRecorder keeps a bounded reservoir of campaign latencies for
// the percentile metrics (the most recent window; a daemon serving
// millions of campaigns must not hoard every sample).
type latencyRecorder struct {
	mu      sync.Mutex
	samples []float64 // ms, ring
	next    int
	count   int64
}

const latencyWindow = 4096

func (l *latencyRecorder) add(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) < latencyWindow {
		l.samples = append(l.samples, ms)
	} else {
		l.samples[l.next] = ms
		l.next = (l.next + 1) % latencyWindow
	}
	l.count++
}

// percentiles returns the p50/p99 of the recorded window (nearest-rank)
// and the lifetime sample count.
func (l *latencyRecorder) percentiles() (p50, p99 float64, count int64) {
	l.mu.Lock()
	sorted := append([]float64(nil), l.samples...)
	count = l.count
	l.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, count
	}
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99), count
}

// Metrics is the /metrics document.
type Metrics struct {
	Campaigns struct {
		Accepted   int64 `json:"accepted"`
		Completed  int64 `json:"completed"`
		Rejected   int64 `json:"rejected"`
		BadSpecs   int64 `json:"bad_specs"`
		Deduped    int64 `json:"deduped"`
		Recovered  int64 `json:"recovered"`
		QueueDepth int64 `json:"queue_depth"`
		Inflight   int64 `json:"inflight"`
	} `json:"campaigns"`
	Cache         CacheSummary `json:"cache"`
	CacheProtocol struct {
		Gets     int64 `json:"gets"`
		GetHits  int64 `json:"get_hits"`
		Puts     int64 `json:"puts"`
		Rejected int64 `json:"rejected"`
	} `json:"cache_protocol"`
	Latency struct {
		Count int64   `json:"count"`
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	} `json:"latency"`
	Shards int `json:"shards"`
}

// Metrics snapshots the daemon's counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.Campaigns.Accepted = s.accepted.Load()
	m.Campaigns.Completed = s.completed.Load()
	m.Campaigns.Rejected = s.rejected.Load()
	m.Campaigns.BadSpecs = s.badSpecs.Load()
	m.Campaigns.Deduped = s.dedups.Load()
	m.Campaigns.Recovered = s.recovered.Load()
	m.Campaigns.QueueDepth = s.queueDepth.Load()
	m.Campaigns.Inflight = s.inflight.Load()
	m.Cache = summarize(&s.cacheTotals)
	m.CacheProtocol.Gets = s.proto.gets.Load()
	m.CacheProtocol.GetHits = s.proto.getHits.Load()
	m.CacheProtocol.Puts = s.proto.puts.Load()
	m.CacheProtocol.Rejected = s.proto.rejected.Load()
	m.Latency.P50Ms, m.Latency.P99Ms, m.Latency.Count = percentilesOf(&s.latency)
	m.Shards = s.cfg.Shards
	return m
}

func percentilesOf(l *latencyRecorder) (p50, p99 float64, count int64) {
	p50, p99, count = l.percentiles()
	return
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Metrics()); err != nil {
		s.logf("encoding metrics: %v", err)
	}
}

// handleExperiments serves the registry so remote clients can discover
// what this daemon can run.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expInfo struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Sweep string `json:"sweep,omitempty"`
	}
	var out []expInfo
	for _, e := range core.Experiments() {
		out = append(out, expInfo{ID: e.ID, Title: e.Title, Sweep: e.Sweep})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.logf("encoding experiments: %v", err)
	}
}
