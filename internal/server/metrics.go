package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/runner"
)

// CampaignResponse is the wire format of one served campaign: the
// results in submission order plus the campaign's cache accounting.
type CampaignResponse struct {
	// ID is the content-addressed campaign identity (identical
	// normalized specs share it).
	ID      string `json:"id"`
	Cluster string `json:"cluster"`
	// Deduped marks a response served by joining an identical in-flight
	// campaign instead of executing.
	Deduped bool               `json:"deduped,omitempty"`
	Results []ExperimentResult `json:"results"`
	Errors  int                `json:"errors,omitempty"`
	// Degraded marks a campaign that switched to no-cache mode after
	// repeated cache failures (results are still correct, just
	// recomputed); TimedOut one that blew the server's campaign
	// deadline (its remaining experiments report errors).
	Degraded bool         `json:"degraded,omitempty"`
	TimedOut bool         `json:"timed_out,omitempty"`
	Cache    CacheSummary `json:"cache"`
	// WallMs is the campaign's server-side latency, queue wait included.
	WallMs float64 `json:"wall_ms"`
}

// ExperimentResult mirrors runner.Result across the wire.
type ExperimentResult struct {
	ID       string `json:"id"`
	Rendered string `json:"rendered,omitempty"`
	Error    string `json:"error,omitempty"`
	// Cached marks a result replayed from the daemon's journal.
	Cached bool `json:"cached,omitempty"`
	// DurabilityLost marks a successful result whose journal append
	// failed: correct, but it will not survive a daemon crash.
	DurabilityLost bool              `json:"durability_lost,omitempty"`
	SimSeconds     float64           `json:"sim_seconds"`
	Worlds         int               `json:"worlds"`
	Tables         int               `json:"tables"`
	Rows           int               `json:"rows"`
	Attempts       int               `json:"attempts"`
	WallMs         float64           `json:"wall_ms"`
	Faults         bench.FaultTotals `json:"faults"`
}

// CacheSummary is a CacheStats snapshot in wire form.
type CacheSummary struct {
	Points     int64   `json:"points"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	MemoHits   int64   `json:"memo_hits"`
	FlightHits int64   `json:"flight_hits"`
	Mismatches int64   `json:"mismatches"`
	Errors     int64   `json:"errors"`
	Retries    int64   `json:"retries,omitempty"`
	Skipped    int64   `json:"skipped,omitempty"`
	HitRate    float64 `json:"hit_rate"`
}

func summarize(s *runner.CacheStats) CacheSummary {
	return CacheSummary{
		Points:     s.Points(),
		Hits:       atomic.LoadInt64(&s.Hits),
		Misses:     atomic.LoadInt64(&s.Misses),
		MemoHits:   atomic.LoadInt64(&s.MemoHits),
		FlightHits: atomic.LoadInt64(&s.FlightHits),
		Mismatches: atomic.LoadInt64(&s.Mismatches),
		Errors:     atomic.LoadInt64(&s.Errors),
		Retries:    atomic.LoadInt64(&s.Retries),
		Skipped:    atomic.LoadInt64(&s.Skipped),
		HitRate:    s.HitRate(),
	}
}

// protoCounters counts remote cache protocol traffic.
type protoCounters struct {
	gets, getHits, puts, rejected atomic.Int64
}

// latencyRecorder keeps a bounded reservoir of campaign latencies for
// the percentile metrics (the most recent window; a daemon serving
// millions of campaigns must not hoard every sample).
type latencyRecorder struct {
	mu      sync.Mutex
	samples []float64 // ms, ring
	next    int
	count   int64
}

const latencyWindow = 4096

func (l *latencyRecorder) add(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) < latencyWindow {
		l.samples = append(l.samples, ms)
	} else {
		l.samples[l.next] = ms
		l.next = (l.next + 1) % latencyWindow
	}
	l.count++
}

// percentiles returns the p50/p99 of the recorded window (nearest-rank)
// and the lifetime sample count.
func (l *latencyRecorder) percentiles() (p50, p99 float64, count int64) {
	l.mu.Lock()
	sorted := append([]float64(nil), l.samples...)
	count = l.count
	l.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, count
	}
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99), count
}

// Metrics is the /metrics document.
type Metrics struct {
	Campaigns struct {
		Accepted   int64 `json:"accepted"`
		Completed  int64 `json:"completed"`
		Rejected   int64 `json:"rejected"`
		BadSpecs   int64 `json:"bad_specs"`
		Deduped    int64 `json:"deduped"`
		Recovered  int64 `json:"recovered"`
		QueueDepth int64 `json:"queue_depth"`
		Inflight   int64 `json:"inflight"`
	} `json:"campaigns"`
	Cache         CacheSummary `json:"cache"`
	CacheProtocol struct {
		Gets     int64 `json:"gets"`
		GetHits  int64 `json:"get_hits"`
		Puts     int64 `json:"puts"`
		Rejected int64 `json:"rejected"`
	} `json:"cache_protocol"`
	Latency struct {
		Count int64   `json:"count"`
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
	} `json:"latency"`
	// Robustness reports the daemon's degradation machinery: drain
	// state, the cache circuit breaker, campaigns running without a
	// cache or deadline-expired, results served without durability,
	// worker shards restarted after panics, and corrupt durability
	// records skipped at boot.
	// Overload reports the adaptive admission controller: the cost and
	// drain estimators behind deadline-aware admission and Retry-After,
	// plus the shed counters by cause (fair-share refusal, hopeless
	// deadline, CoDel queue-collapse drop; queue-full rejections stay
	// under Campaigns.Rejected).
	Overload struct {
		EstPointMs      float64 `json:"est_point_ms"`
		EstPointsPerExp float64 `json:"est_points_per_exp"`
		DrainPerSec     float64 `json:"drain_per_sec"`
		RetryAfterS     int     `json:"retry_after_s"`
		ShedFairShare   int64   `json:"shed_fair_share"`
		ShedDeadline    int64   `json:"shed_deadline"`
		ShedCodel       int64   `json:"shed_codel"`
	} `json:"overload"`
	Robustness struct {
		Draining           bool                `json:"draining"`
		Breaker            runner.BreakerStats `json:"breaker"`
		DegradedCampaigns  int64               `json:"degraded_campaigns"`
		TimedOutCampaigns  int64               `json:"timed_out_campaigns"`
		DurabilityWarnings int64               `json:"durability_warnings"`
		DrainRejected      int64               `json:"drain_rejected"`
		ShardRestarts      int64               `json:"shard_restarts"`
		JournalSkipped     int64               `json:"journal_skipped_records"`
		CampaignLogSkipped int64               `json:"campaign_log_skipped_records"`
	} `json:"robustness"`
	Shards int `json:"shards"`
}

// Metrics snapshots the daemon's counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.Campaigns.Accepted = s.accepted.Load()
	m.Campaigns.Completed = s.completed.Load()
	m.Campaigns.Rejected = s.rejected.Load()
	m.Campaigns.BadSpecs = s.badSpecs.Load()
	m.Campaigns.Deduped = s.dedups.Load()
	m.Campaigns.Recovered = s.recovered.Load()
	m.Campaigns.QueueDepth = s.queueDepth.Load()
	m.Campaigns.Inflight = s.inflight.Load()
	m.Cache = summarize(&s.cacheTotals)
	m.CacheProtocol.Gets = s.proto.gets.Load()
	m.CacheProtocol.GetHits = s.proto.getHits.Load()
	m.CacheProtocol.Puts = s.proto.puts.Load()
	m.CacheProtocol.Rejected = s.proto.rejected.Load()
	m.Latency.P50Ms, m.Latency.P99Ms, m.Latency.Count = percentilesOf(&s.latency)
	m.Overload.EstPointMs, m.Overload.EstPointsPerExp, m.Overload.DrainPerSec = s.ov.snapshot()
	m.Overload.RetryAfterS = s.ov.retryAfterSecs(s.queueDepth.Load())
	m.Overload.ShedFairShare = s.ov.shedFair.Load()
	m.Overload.ShedDeadline = s.ov.shedDeadline.Load()
	m.Overload.ShedCodel = s.ov.shedCodel.Load()
	m.Robustness.Draining = s.Draining()
	if s.breaker != nil {
		m.Robustness.Breaker = s.breaker.Stats()
	} else {
		m.Robustness.Breaker.StateName = "closed"
	}
	m.Robustness.DegradedCampaigns = s.degradedCampaigns.Load()
	m.Robustness.TimedOutCampaigns = s.timeouts.Load()
	m.Robustness.DurabilityWarnings = s.durabilityWarnings.Load()
	m.Robustness.DrainRejected = s.drainRejects.Load()
	m.Robustness.ShardRestarts = s.pool.Restarts()
	if s.journal != nil {
		m.Robustness.JournalSkipped = int64(s.journal.Skipped())
	}
	m.Robustness.CampaignLogSkipped = s.stateSkipped.Load()
	m.Shards = s.cfg.Shards
	return m
}

func percentilesOf(l *latencyRecorder) (p50, p99 float64, count int64) {
	p50, p99, count = l.percentiles()
	return
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Metrics()); err != nil {
		s.logf("encoding metrics: %v", err)
	}
}

// handleExperiments serves the registry so remote clients can discover
// what this daemon can run.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expInfo struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Sweep string `json:"sweep,omitempty"`
	}
	var out []expInfo
	for _, e := range core.Experiments() {
		out = append(out, expInfo{ID: e.ID, Title: e.Title, Sweep: e.Sweep})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.logf("encoding experiments: %v", err)
	}
}
