package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// The campaign state log is the daemon-level half of the durability
// story (the runner journal is the experiment-level half): every
// accepted campaign spec is appended before it runs and a "done" marker
// after it completes, both as single JSONL lines. On startup, specs
// with no done marker are the campaigns the previous process was killed
// inside; New re-runs them so their remaining experiments land in the
// journal and a re-submitted spec replays byte-identically. The log is
// append-only across restarts; a torn trailing line (killed mid-append)
// is skipped, matching the journal's tolerance.

const stateSchema = 1

type stateEntry struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Status string `json:"status"` // "accepted" or "done"
	// Spec rides along on accepted entries so a restart can re-run the
	// campaign without the client.
	Spec *CampaignSpec `json:"spec,omitempty"`
}

// openStateLog loads the campaign log at path, returning the campaigns
// that were accepted but never completed, and opens the file for
// appending.
func (s *Server) openStateLog(path string) ([]*campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("server: reading campaign log: %w", err)
	}
	open := map[string]*CampaignSpec{}
	var order []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), maxSpecBytes*2)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e stateEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn tail of a killed append; anything after it would have
			// been written by a process that survived the tear, which
			// cannot happen for an append-only log.
			break
		}
		if e.Schema != stateSchema {
			continue
		}
		switch e.Status {
		case "accepted":
			if e.Spec != nil {
				if _, dup := open[e.ID]; !dup {
					order = append(order, e.ID)
				}
				open[e.ID] = e.Spec
			}
		case "done":
			if _, ok := open[e.ID]; ok {
				delete(open, e.ID)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: scanning campaign log: %w", err)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening campaign log: %w", err)
	}
	s.stateLog = f

	var pending []*campaign
	for _, id := range order {
		spec, ok := open[id]
		if !ok {
			continue
		}
		c, err := compile(*spec, s.cfg.MaxRuns)
		if err != nil {
			// The registry changed since the spec was logged; nothing to
			// resume.
			continue
		}
		pending = append(pending, c)
	}
	return pending, nil
}

// logState appends one entry to the campaign log (single write, torn
// tails tolerated on load). Best-effort: a failed append costs
// durability, not correctness, and is surfaced in the daemon log.
func (s *Server) logState(e stateEntry) {
	s.mu.Lock()
	f := s.stateLog
	s.mu.Unlock()
	if f == nil {
		return
	}
	e.Schema = stateSchema
	b, err := json.Marshal(e)
	if err != nil {
		s.logf("encoding campaign log entry: %v", err)
		return
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		s.logf("appending to campaign log: %v", err)
	}
}
