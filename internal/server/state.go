package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// The campaign state log is the daemon-level half of the durability
// story (the runner journal is the experiment-level half): every
// accepted campaign spec is appended before it runs and a "done" marker
// after it completes, both as single JSONL lines. On startup, specs
// with no done marker are the campaigns the previous process was killed
// inside; New re-runs them so their remaining experiments land in the
// journal and a re-submitted spec replays byte-identically. The log is
// append-only across restarts. Recovery is tolerant: a corrupt record
// anywhere — torn tail of a killed append, a line mangled by a torn
// write — is skipped, counted and logged; every intact record before
// and after it still loads (losing a whole boot's worth of state to one
// bad line would defeat the log's purpose).

const stateSchema = 1

type stateEntry struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Status string `json:"status"` // "accepted" or "done"
	// Spec rides along on accepted entries so a restart can re-run the
	// campaign without the client.
	Spec *CampaignSpec `json:"spec,omitempty"`
}

// openStateLog loads the campaign log at path, returning the campaigns
// that were accepted but never completed, and opens the file for
// appending.
func (s *Server) openStateLog(path string) ([]*campaign, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("server: reading campaign log: %w", err)
	}
	open := map[string]*CampaignSpec{}
	var order []string
	offset := 0
	for line := 1; offset < len(data); line++ {
		end := bytes.IndexByte(data[offset:], '\n')
		text := data[offset:]
		next := len(data)
		terminated := end >= 0
		if terminated {
			text = data[offset : offset+end]
			next = offset + end + 1
		}
		offset = next
		text = bytes.TrimSpace(text)
		if len(text) == 0 {
			continue
		}
		var e stateEntry
		if err := json.Unmarshal(text, &e); err != nil {
			// A torn record (mid-append kill or torn write). Skip it and
			// keep loading — the campaign it described is simply re-run
			// (if "accepted" was lost) or re-recovered (if "done" was).
			s.stateSkipped.Add(1)
			if terminated {
				s.logf("campaign log %s: skipping corrupt record at line %d", path, line)
			} else {
				s.logf("campaign log %s: dropping torn tail record at line %d", path, line)
			}
			continue
		}
		if e.Schema != stateSchema {
			continue
		}
		switch e.Status {
		case "accepted":
			if e.Spec != nil {
				if _, dup := open[e.ID]; !dup {
					order = append(order, e.ID)
				}
				open[e.ID] = e.Spec
			}
		case "done":
			if _, ok := open[e.ID]; ok {
				delete(open, e.ID)
			}
		}
	}
	// A file not ending in '\n' may end mid-record: lead the next
	// append with a newline so the damage stays on its own line.
	s.stateDirty = len(data) > 0 && data[len(data)-1] != '\n'

	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening campaign log: %w", err)
	}
	s.stateLog = f

	var pending []*campaign
	for _, id := range order {
		spec, ok := open[id]
		if !ok {
			continue
		}
		c, err := compile(*spec, s.cfg.MaxRuns)
		if err != nil {
			// The registry changed since the spec was logged; nothing to
			// resume.
			continue
		}
		pending = append(pending, c)
	}
	return pending, nil
}

// logState appends one entry to the campaign log (single write, torn
// records tolerated on load). Best-effort: a failed append costs
// durability, not correctness, and is surfaced in the daemon log; the
// next append then leads with a newline so a half-written line cannot
// corrupt it.
func (s *Server) logState(e stateEntry) {
	e.Schema = stateSchema
	b, err := json.Marshal(e)
	if err != nil {
		s.logf("encoding campaign log entry: %v", err)
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stateLog == nil {
		return
	}
	if s.stateDirty {
		b = append([]byte{'\n'}, b...)
	}
	n, werr := s.stateLog.Write(b)
	if werr != nil || n < len(b) {
		s.stateDirty = true
		s.durabilityWarnings.Add(1)
		s.logf("appending to campaign log: %v (%d of %d bytes)", werr, n, len(b))
		return
	}
	s.stateDirty = false
}

// syncStateLog flushes the campaign log to stable storage
// (best-effort; part of a drain's final checkpoint).
func (s *Server) syncStateLog() {
	s.mu.Lock()
	f := s.stateLog
	s.mu.Unlock()
	if f == nil {
		return
	}
	if err := f.Sync(); err != nil {
		s.logf("syncing campaign log: %v", err)
	}
}
