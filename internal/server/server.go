// Package server turns the campaign runner into a long-lived service:
// clients POST campaign specs (experiments × cluster × faults × seed ×
// runs) to an HTTP/JSON daemon, a bounded admission queue schedules
// them Slurm-style, and every campaign's sweep points fan out across a
// server-wide worker-shard set. The content-addressed point cache is
// shared by all campaigns and exposed over a remote GET/PUT protocol,
// in-flight computations are deduplicated across concurrent clients,
// and a JSONL journal makes the daemon crash-safe: a killed daemon
// resumes unfinished campaigns on restart and replays finished ones
// byte-identically.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/runner"
)

// Config sizes one daemon.
type Config struct {
	// CacheDir roots the persistent point cache; "" disables it (points
	// are still deduplicated in memory across concurrent campaigns).
	CacheDir string
	// StateDir holds the durability layer (campaign log + result
	// journal); "" disables it (a killed daemon then forgets its work).
	StateDir string
	// Shards is the size of the server-wide point-execution worker set;
	// <= 0 means runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds how many campaigns may wait for a run slot
	// before submissions are rejected with 503 (Slurm-style admission);
	// <= 0 means 64.
	QueueDepth int
	// MaxInflight bounds how many campaigns execute concurrently;
	// <= 0 means 2. Points of concurrent campaigns share the shard set.
	MaxInflight int
	// MaxRuns bounds the per-configuration repetition count a client
	// may request; <= 0 means 64.
	MaxRuns int
	// Log receives one line per accepted/rejected/recovered campaign;
	// nil discards.
	Log io.Writer
	// CampaignTimeout bounds each campaign's execution wall-clock; an
	// expired campaign fails its remaining experiments fast (points
	// already running finish) and is flagged TimedOut in the response.
	// <= 0 disables the deadline.
	CampaignTimeout time.Duration
	// FS is the filesystem for the cache and durability layers; nil
	// means the real one. Fault drills pass chaos.Flaky.
	FS chaos.FS
	// Clock paces drain polling; nil means the real clock (tests drive
	// a chaos.FakeClock).
	Clock chaos.Clock
	// BreakerFailLimit / BreakerProbeEvery tune the circuit breaker in
	// front of the point cache (consecutive failures before tripping;
	// half-open probe period in operations); <= 0 means the
	// runner.NewBreaker defaults.
	BreakerFailLimit  int
	BreakerProbeEvery int
	// DegradeAfter is the per-campaign cache-error budget before a
	// campaign degrades to no-cache mode; <= 0 means
	// runner.DefaultDegradeAfter.
	DegradeAfter int
	// CoDelTarget / CoDelInterval tune the staleness controller: when
	// queue sojourns stay above Target for a full Interval, dequeued
	// campaigns are shed until sojourns recover (see internal/server
	// admission.go). <= 0 means 2s / 4s.
	CoDelTarget   time.Duration
	CoDelInterval time.Duration
	// FairShare caps each client's outstanding campaigns. <= 0 means
	// dynamic: QueueDepth divided by the number of active clients.
	FairShare int
}

// Server is the campaign daemon. Create with New, serve Handler, and
// Close when done.
type Server struct {
	cfg     Config
	fs      chaos.FS
	clock   chaos.Clock
	pool    *runner.SharedPool
	flight  *runner.PointFlight
	cache   *runner.PointCache // nil when CacheDir == ""
	breaker *runner.Breaker    // guards cache; nil when cache is nil
	journal *runner.Journal    // nil when StateDir == ""

	queueSlots chan struct{}
	runSlots   chan struct{}
	queueDepth atomic.Int64
	inflight   atomic.Int64

	accepted  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64 // queue-full rejections
	badSpecs  atomic.Int64 // 4xx submissions
	dedups    atomic.Int64 // campaigns served by joining an identical in-flight one
	recovered atomic.Int64 // campaigns re-run at startup

	draining           atomic.Bool  // shutdown in progress: admission closed
	drainRejects       atomic.Int64 // submissions refused while draining
	timeouts           atomic.Int64 // campaigns that blew CampaignTimeout
	degradedCampaigns  atomic.Int64 // campaigns that switched to no-cache mode
	durabilityWarnings atomic.Int64 // experiments served without a journal record
	stateSkipped       atomic.Int64 // corrupt campaign-log records skipped at boot

	cacheTotals runner.CacheStats
	proto       protoCounters
	latency     latencyRecorder
	ov          *overload

	mu         sync.Mutex
	campFlight map[string]*campaignCall
	stateLog   chaos.File
	// stateDirty means the campaign log may end mid-line (failed
	// append); the next append leads with a newline to isolate it.
	stateDirty bool
	closed     bool

	recovery sync.WaitGroup

	// runFn executes one validated campaign; tests stub it to probe the
	// HTTP layer without simulating anything.
	runFn func(c *campaign) *CampaignResponse
}

type campaignCall struct {
	done chan struct{}
	resp *CampaignResponse
	err  *submitError
}

// submitError is a client-visible submission failure with its HTTP
// status; retryAfter (seconds, 0 = none) rides along so 503s carry the
// adaptive backoff hint computed from the observed drain rate.
type submitError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *submitError) Error() string { return e.msg }

// New builds a daemon: opens the cache and durability layer, starts the
// worker shards, and re-runs any campaign that was accepted but not
// completed when the previous process died (their results land in the
// journal, so a client re-submitting the spec replays byte-identically).
func New(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.FS == nil {
		cfg.FS = chaos.OS()
	}
	if cfg.Clock == nil {
		cfg.Clock = chaos.Real()
	}
	s := &Server{
		cfg:        cfg,
		fs:         cfg.FS,
		clock:      cfg.Clock,
		flight:     runner.NewPointFlight(),
		queueSlots: make(chan struct{}, cfg.QueueDepth),
		runSlots:   make(chan struct{}, cfg.MaxInflight),
		campFlight: make(map[string]*campaignCall),
	}
	s.ov = newOverload(s.clock, cfg.QueueDepth, cfg.CoDelTarget, cfg.CoDelInterval, cfg.FairShare)
	s.runFn = s.runCampaign
	if cfg.CacheDir != "" {
		cache, err := runner.OpenPointCacheFS(cfg.CacheDir, s.fs)
		if err != nil {
			return nil, err
		}
		s.cache = cache
		s.breaker = runner.NewBreaker(cache, cfg.BreakerFailLimit, cfg.BreakerProbeEvery)
	}
	var pending []*campaign
	if cfg.StateDir != "" {
		if err := s.fs.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating state dir: %w", err)
		}
		j, err := runner.OpenJournalFS(filepath.Join(cfg.StateDir, "journal.jsonl"), s.fs, s.logf)
		if err != nil {
			return nil, err
		}
		s.journal = j
		pending, err = s.openStateLog(filepath.Join(cfg.StateDir, "campaigns.jsonl"))
		if err != nil {
			j.Close()
			return nil, err
		}
	}
	s.pool = runner.NewSharedPool(cfg.Shards)

	// Resume campaigns the previous process accepted but never finished.
	// They run through the normal submission path (queue slots and all),
	// concurrently with fresh client traffic; the point flight dedups
	// any overlap with a client re-submitting the same spec.
	for _, c := range pending {
		c := c
		c.internal = true // recovery must not be shed by overload control
		s.recovered.Add(1)
		s.recovery.Add(1)
		go func() {
			defer s.recovery.Done()
			s.logf("recovering campaign %s (%d experiments)", c.id[:12], len(c.exps))
			if _, err := s.submit(c); err != nil {
				s.logf("recovery of %s failed: %s", c.id[:12], err.msg)
			}
		}()
	}
	return s, nil
}

// Recovering reports how many unfinished campaigns this daemon picked
// up at startup; WaitRecovery blocks until they have been re-run.
func (s *Server) Recovering() int  { return int(s.recovered.Load()) }
func (s *Server) WaitRecovery()    { s.recovery.Wait() }
func (s *Server) CacheDir() string { return s.cfg.CacheDir }
func (s *Server) Shards() int      { return s.cfg.Shards }
func (s *Server) Journal() bool    { return s.journal != nil }

// BeginDrain closes admission: new campaign submissions are refused
// with 503 while campaigns already admitted keep running. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether admission is closed.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain blocks until every admitted campaign has finished (the queue
// and run slots are empty) and the durability layer is flushed, or ctx
// expires — in which case the unfinished campaigns stay "accepted" in
// the state log and are recovered by the next New. Call BeginDrain
// first so the population being waited on cannot grow.
func (s *Server) Drain(ctx context.Context) error {
	for {
		if s.queueDepth.Load() == 0 && s.inflight.Load() == 0 && len(s.queueSlots) == 0 {
			if s.journal != nil {
				if err := s.journal.Sync(); err != nil {
					s.logf("drain: syncing journal: %v", err)
				}
			}
			if s.cache != nil {
				if err := s.cache.Flush(); err != nil {
					s.logf("drain: flushing point cache: %v", err)
				}
			}
			s.syncStateLog()
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain aborted with %d campaigns unfinished: %w",
				s.queueDepth.Load()+s.inflight.Load(), ctx.Err())
		case <-s.clock.After(5 * time.Millisecond):
		}
	}
}

// Close releases the daemon: the shard set, the journal, and the state
// log. Campaigns still executing keep computing on their own request
// goroutines but can no longer journal results — exactly the state a
// killed process leaves behind, which New recovers from.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stateLog := s.stateLog
	s.stateLog = nil
	s.mu.Unlock()

	s.pool.Close()
	var err error
	if s.cache != nil {
		err = s.cache.Close()
	}
	if s.journal != nil {
		if jerr := s.journal.Close(); err == nil {
			err = jerr
		}
	}
	if stateLog != nil {
		if cerr := stateLog.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Handler returns the daemon's HTTP API:
//
//	POST /campaign     submit a campaign spec, respond with its results
//	GET  /cache/{sum}  fetch a cached point record by content address
//	PUT  /cache/{sum}  store a point record (sha256-verified)
//	GET  /metrics      queue/cache/latency/robustness counters as JSON
//	GET  /experiments  the experiment registry
//	GET  /healthz      liveness probe (503 once draining)
//	GET  /readyz       readiness probe (503 when draining or the queue is full)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaign", s.handleCampaign)
	mux.HandleFunc("GET /cache/{sum}", s.handleCacheGet)
	mux.HandleFunc("PUT /cache/{sum}", s.handleCachePut)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleReadyz reports whether the daemon would accept a submission
// right now: not draining, and the admission queue has room. Load
// balancers steer new campaigns away on 503 while /healthz keeps the
// process alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.Draining():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case len(s.queueSlots) >= cap(s.queueSlots):
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "queue full")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleCampaign is the submission endpoint. Malformed or out-of-bound
// specs are 400s; a full queue is a 503 with Retry-After; everything
// else executes (or joins an identical in-flight campaign) and returns
// the full result set as JSON.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.drainRejects.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.ov.retryAfterSecs(s.queueDepth.Load())))
		http.Error(w, "interfd: draining; submit to another instance or retry after restart",
			http.StatusServiceUnavailable)
		return
	}
	c, err := parseSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes), s.cfg.MaxRuns)
	if err != nil {
		s.badSpecs.Add(1)
		http.Error(w, "interfd: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.client = clientKey(r)
	if h := r.Header.Get("X-Deadline"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d < 0 {
			s.badSpecs.Add(1)
			http.Error(w, "interfd: X-Deadline must be a non-negative Go duration (e.g. 30s)",
				http.StatusBadRequest)
			return
		}
		c.deadline = d
	}
	resp, serr := s.submit(c)
	if serr != nil {
		if serr.status == http.StatusServiceUnavailable {
			ra := serr.retryAfter
			if ra <= 0 {
				ra = s.ov.retryAfterSecs(s.queueDepth.Load())
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		http.Error(w, "interfd: "+serr.msg, serr.status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		s.logf("encoding response for %s: %v", resp.ID[:12], err)
	}
}

// submit runs one validated campaign through the campaign-level
// singleflight and the admission queue. Concurrent identical specs
// share one execution: followers wait on the leader and receive its
// response (marked Deduped) without consuming queue or run slots.
func (s *Server) submit(c *campaign) (*CampaignResponse, *submitError) {
	s.mu.Lock()
	if call, ok := s.campFlight[c.id]; ok {
		s.mu.Unlock()
		<-call.done
		s.dedups.Add(1)
		if call.err != nil {
			return nil, call.err
		}
		shared := *call.resp
		shared.Deduped = true
		return &shared, nil
	}
	call := &campaignCall{done: make(chan struct{})}
	s.campFlight[c.id] = call
	s.mu.Unlock()

	call.resp, call.err = s.admit(c)
	s.mu.Lock()
	delete(s.campFlight, c.id)
	s.mu.Unlock()
	close(call.done)
	return call.resp, call.err
}

// admit applies the Slurm-style bounded queue plus the adaptive
// overload controller: a client over its fair share or a deadline that
// provably cannot be met is refused before consuming a queue slot, a
// full queue rejects with a drain-rate-derived Retry-After, and a
// campaign that sat queued past the CoDel collapse threshold is shed at
// dequeue instead of serving stale work. Internal submissions (startup
// recovery) bypass the shedding paths — they are already-accepted work.
func (s *Server) admit(c *campaign) (*CampaignResponse, *submitError) {
	shed := func(counterMsg string) *submitError {
		return &submitError{http.StatusServiceUnavailable, counterMsg,
			s.ov.retryAfterSecs(s.queueDepth.Load())}
	}
	if !c.internal {
		// A full queue outranks the softer gates: "queue is full" is the
		// truthful rejection whoever submitted, and fair-share/deadline
		// shedding should only ever explain a refusal the queue itself
		// would have admitted. Racy reads are fine — the non-blocking
		// slot acquire below is the authoritative check.
		if len(s.queueSlots) >= cap(s.queueSlots) {
			s.rejected.Add(1)
			s.logf("rejected campaign %s: queue full (%d waiting)", c.id[:12], s.queueDepth.Load())
			return nil, shed(fmt.Sprintf("admission queue is full (%d campaigns waiting); retry later", s.queueDepth.Load()))
		}
		if !s.ov.reserve(c.client) {
			s.logf("shed campaign %s: client %s over its fair share", c.id[:12], c.client)
			return nil, shed("client is over its fair share of the admission queue; retry later")
		}
		defer s.ov.release(c.client)
		if s.ov.overDeadline(len(c.exps), s.queueDepth.Load(), c.deadline) {
			s.logf("shed campaign %s: estimated cost exceeds the %v deadline", c.id[:12], c.deadline)
			return nil, shed(fmt.Sprintf("estimated completion exceeds the %v deadline; raise it or retry later", c.deadline))
		}
	}
	select {
	case s.queueSlots <- struct{}{}:
	default:
		s.rejected.Add(1)
		s.logf("rejected campaign %s: queue full (%d waiting)", c.id[:12], s.queueDepth.Load())
		return nil, shed(fmt.Sprintf("admission queue is full (%d campaigns waiting); retry later", s.queueDepth.Load()))
	}
	defer func() { <-s.queueSlots }()

	enqueued := s.clock.Now()
	s.queueDepth.Add(1)
	s.runSlots <- struct{}{}
	s.queueDepth.Add(-1)
	defer func() { <-s.runSlots }()

	if !c.internal {
		sojourn := s.clock.Now().Sub(enqueued)
		if c.deadline > 0 && sojourn > c.deadline {
			s.ov.shedDeadline.Add(1)
			s.logf("shed campaign %s: %v queued exceeds its %v deadline", c.id[:12], sojourn, c.deadline)
			return nil, shed(fmt.Sprintf("queued %v, past the %v deadline; retry later", sojourn.Round(time.Millisecond), c.deadline))
		}
		if s.ov.dequeue(sojourn) {
			s.logf("shed campaign %s: queue collapsed (%v sojourn)", c.id[:12], sojourn)
			return nil, shed(fmt.Sprintf("queue collapsed (%v sojourn); shedding to recover, retry later", sojourn.Round(time.Millisecond)))
		}
	}

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	s.accepted.Add(1)
	s.logState(stateEntry{ID: c.id, Status: "accepted", Spec: &c.spec})
	start := time.Now()
	resp := s.runFn(c)
	resp.WallMs = float64(time.Since(start).Microseconds()) / 1e3
	s.latency.add(resp.WallMs)
	s.ov.observe(resp.Cache.Points, len(c.exps), resp.WallMs)
	s.logState(stateEntry{ID: c.id, Status: "done"})
	s.completed.Add(1)
	s.logf("campaign %s: %d experiments on %s in %.0fms (%d/%d points cached, %d errors)",
		c.id[:12], len(c.exps), c.cluster, resp.WallMs,
		resp.Cache.Hits+resp.Cache.MemoHits+resp.Cache.FlightHits, resp.Cache.Points, resp.Errors)
	return resp, nil
}

// clientKey identifies the submitting client for fair queueing: the
// X-API-Key header when present, otherwise the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// runCampaign executes a campaign on the shared shard set, replaying
// journaled results when the durability layer is on.
func (s *Server) runCampaign(c *campaign) *CampaignResponse {
	stats := &runner.CacheStats{}
	opts := runner.Options{
		Workers:      s.cfg.Shards,
		Format:       c.spec.Format,
		CacheStats:   stats,
		Flight:       s.flight,
		SharedPool:   s.pool,
		DegradeAfter: s.cfg.DegradeAfter,
	}
	if s.breaker != nil {
		opts.Cache = s.breaker
	}
	ctx := context.Background()
	if s.cfg.CampaignTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.CampaignTimeout)
		defer cancel()
	}
	opts.Ctx = ctx
	var results <-chan runner.Result
	if s.journal != nil {
		results = runner.RunResumable(c.env, c.exps, opts, s.journal, c.cluster, true)
	} else {
		results = runner.Run(c.env, c.exps, opts)
	}
	resp := &CampaignResponse{ID: c.id, Cluster: c.cluster}
	for res := range results {
		er := ExperimentResult{
			ID:       res.Exp.ID,
			Rendered: res.Rendered,
			Cached:   res.Cached,
		}
		m := res.Metrics
		er.SimSeconds, er.Worlds, er.Tables, er.Rows = m.SimSeconds, m.Worlds, m.Tables, m.Rows
		er.Attempts, er.WallMs, er.Faults = m.Attempts, float64(m.Wall.Milliseconds()), m.Faults
		if res.Err != nil {
			er.Error = res.Err.Error()
			er.Rendered = ""
			resp.Errors++
		}
		if res.DurabilityErr != nil {
			// The result is correct; it just is not crash-safe. Serve it
			// with a warning instead of failing the experiment.
			er.DurabilityLost = true
			s.durabilityWarnings.Add(1)
			s.logf("campaign %s: experiment %s not journaled: %v", c.id[:12], res.Exp.ID, res.DurabilityErr)
		}
		resp.Results = append(resp.Results, er)
	}
	resp.Cache = summarize(stats)
	s.cacheTotals.Add(stats)
	if s.cache != nil {
		// One pack flush per campaign: the write-behind buffer's records
		// become durable without paying per-point file I/O.
		if err := s.cache.Flush(); err != nil {
			s.logf("campaign %s: flushing point cache: %v", c.id[:12], err)
		}
	}
	if atomic.LoadInt64(&stats.Degraded) != 0 {
		resp.Degraded = true
		s.degradedCampaigns.Add(1)
		s.logf("campaign %s: cache degraded to no-cache mode after %d errors",
			c.id[:12], atomic.LoadInt64(&stats.Errors))
	}
	if ctx.Err() != nil {
		resp.TimedOut = true
		s.timeouts.Add(1)
		s.logf("campaign %s: exceeded the %v campaign timeout", c.id[:12], s.cfg.CampaignTimeout)
	}
	return resp
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "interfd: "+format+"\n", args...)
}
