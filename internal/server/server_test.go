package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/runner"
)

// newTestServer builds a daemon plus an httptest front end, both torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postSpec submits one campaign and returns the HTTP status, the raw
// body, and (on 200) the decoded response.
func postSpec(t *testing.T, url string, spec CampaignSpec) (int, []byte, *CampaignResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, payload, nil
	}
	var cr CampaignResponse
	if err := json.Unmarshal(payload, &cr); err != nil {
		t.Fatalf("decoding campaign response: %v\n%s", err, payload)
	}
	return resp.StatusCode, payload, &cr
}

// localRendered runs the same experiments in-process, bypassing the
// daemon entirely, and returns the rendered tables in order — the
// byte-identity oracle for everything the server serves.
func localRendered(t *testing.T, cluster string, seed int64, runs int, ids ...string) []string {
	t.Helper()
	env, err := core.Env(cluster, seed, runs)
	if err != nil {
		t.Fatal(err)
	}
	var exps []core.Experiment
	for _, id := range ids {
		e, ok := core.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	res := runner.Collect(runner.Run(env, exps, runner.Options{Workers: 2, Format: "ascii"}))
	var out []string
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("local %s failed: %v", ids[i], r.Err)
		}
		out = append(out, r.Rendered)
	}
	return out
}

// TestServerMatchesLocal: a campaign served by the daemon must render
// byte-identically to the same experiments run in-process — with and
// without the persistent cache, cold and warm.
func TestServerMatchesLocal(t *testing.T) {
	want := localRendered(t, "henri", 1, 1, "fig3", "ext-sched")
	_, ts := newTestServer(t, Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	spec := CampaignSpec{Experiments: []string{"fig3", "ext-sched"}, Seed: 1, Runs: 1}
	for _, phase := range []string{"cold", "warm"} {
		code, body, cr := postSpec(t, ts.URL, spec)
		if code != http.StatusOK {
			t.Fatalf("%s submit: %d: %s", phase, code, body)
		}
		if cr.Errors != 0 || len(cr.Results) != 2 {
			t.Fatalf("%s response: %d errors, %d results", phase, cr.Errors, len(cr.Results))
		}
		for i, er := range cr.Results {
			if er.Rendered != want[i] {
				t.Errorf("%s %s differs from the local run:\n got %q\nwant %q", phase, er.ID, er.Rendered, want[i])
			}
			if er.Worlds == 0 || er.SimSeconds <= 0 || er.Rows == 0 {
				t.Errorf("%s %s metrics empty: %+v", phase, er.ID, er)
			}
		}
	}
}

// TestServerBadSpecs: hostile submissions are client errors — 400, a
// reason in the body, and a bad_specs counter tick; nothing executes.
func TestServerBadSpecs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var ran atomic.Int64
	inner := s.runFn
	s.runFn = func(c *campaign) *CampaignResponse { ran.Add(1); return inner(c) }
	cases := []struct {
		name, body, want string
	}{
		{"empty object", `{}`, "no experiments"},
		{"not json", `hello`, "decoding"},
		{"unknown field", `{"experiments":["fig3"],"nodes":9}`, "decoding"},
		{"trailing data", `{"experiments":["fig3"]} {"again":1}`, "trailing data"},
		{"unknown experiment", `{"experiments":["figzilla"]}`, "unknown experiment"},
		{"unknown cluster", `{"cluster":"atlantis","experiments":["fig3"]}`, "atlantis"},
		{"runs too high", `{"experiments":["fig3"],"runs":100000}`, "out of range"},
		{"negative runs", `{"experiments":["fig3"],"runs":-3}`, "out of range"},
		{"bad format", `{"experiments":["fig3"],"format":"xml"}`, "unknown format"},
		{"bad faults", `{"experiments":["fig3"],"faults":"explode:now"}`, "explode"},
		{"huge experiment name", `{"experiments":["` + strings.Repeat("x", 4096) + `"]}`, "longer than"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/campaign", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, payload)
		}
		if !strings.Contains(string(payload), tc.want) {
			t.Errorf("%s: body %q does not mention %q", tc.name, payload, tc.want)
		}
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d hostile specs executed", got)
	}
	if m := s.Metrics(); m.Campaigns.BadSpecs < int64(len(cases)) {
		t.Fatalf("bad_specs %d, want >= %d", m.Campaigns.BadSpecs, len(cases))
	}
}

// TestServerQueueFull: with a one-slot queue, a second concurrent
// campaign is rejected Slurm-style — 503, Retry-After, and a rejection
// counter tick — and the in-flight campaign is unaffected.
func TestServerQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.runFn = func(c *campaign) *CampaignResponse {
		close(entered)
		<-release
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}

	first := make(chan int, 1)
	go func() {
		code, _, _ := postSpec(t, ts.URL, CampaignSpec{Experiments: []string{"fig3"}, Runs: 1})
		first <- code
	}()
	<-entered

	// A *different* spec (same one would join the in-flight campaign
	// instead of queueing).
	body, _ := json.Marshal(CampaignSpec{Experiments: []string{"ext-sched"}, Runs: 1})
	resp, err := http.Post(ts.URL+"/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, payload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 has no Retry-After header")
	}
	if !strings.Contains(string(payload), "queue is full") {
		t.Fatalf("body %q does not explain the rejection", payload)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight campaign got %d after a rejection", code)
	}
	if m := s.Metrics(); m.Campaigns.Rejected != 1 || m.Campaigns.Completed != 1 {
		t.Fatalf("counters: %+v", m.Campaigns)
	}
}

// TestServerCampaignDedup: identical concurrent submissions share one
// execution — the leader runs, followers receive the same response
// marked Deduped without executing anything.
func TestServerCampaignDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var runs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	s.runFn = func(c *campaign) *CampaignResponse {
		runs.Add(1)
		close(entered)
		<-release
		return &CampaignResponse{ID: c.id, Cluster: c.cluster}
	}

	spec := CampaignSpec{Experiments: []string{"fig3"}, Runs: 1}
	const followers = 7
	var wg sync.WaitGroup
	codes := make([]int, followers+1)
	deduped := make([]bool, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, cr := postSpec(t, ts.URL, spec)
		codes[0], deduped[0] = code, cr != nil && cr.Deduped
	}()
	<-entered
	// The leader is parked inside runFn; every follower that arrives
	// before the release joins it. The grace sleep gives the follower
	// goroutines time to reach the singleflight after their POST.
	for i := 1; i <= followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, cr := postSpec(t, ts.URL, spec)
			codes[i], deduped[i] = code, cr != nil && cr.Deduped
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()

	var dedupCount int
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, code)
		}
		if deduped[i] {
			dedupCount++
		}
	}
	m := s.Metrics()
	if int(runs.Load())+dedupCount != followers+1 {
		t.Fatalf("%d runs + %d deduped != %d submissions", runs.Load(), dedupCount, followers+1)
	}
	if m.Campaigns.Deduped != int64(dedupCount) || dedupCount == 0 {
		t.Fatalf("deduped counter %d, responses marked %d", m.Campaigns.Deduped, dedupCount)
	}
}

// validRecord builds a minimal well-formed point record for protocol
// tests.
func validRecord(t *testing.T, key string) bench.PointRecord {
	t.Helper()
	return bench.PointRecord{
		Schema:     bench.PointSchema,
		Key:        key,
		Payload:    json.RawMessage(`{"v":1}`),
		SimSeconds: 1,
		Worlds:     1,
	}
}

// TestCacheProtocolVerification: the remote cache endpoint verifies
// sha256 on both directions and refuses misfiled entries.
func TestCacheProtocolVerification(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheDir: filepath.Join(t.TempDir(), "cache")})

	get := func(path string) (int, []byte, http.Header) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b, resp.Header
	}
	put := func(sum string, body []byte, digest string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+sum, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if digest != "" {
			req.Header.Set(shaHeader, digest)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code, _, _ := get("/cache/nothex"); code != http.StatusBadRequest {
		t.Fatalf("GET bad sum: %d, want 400", code)
	}
	missing := runner.CacheKeySum("no such key")
	if code, _, _ := get("/cache/" + missing); code != http.StatusNotFound {
		t.Fatalf("GET miss: %d, want 404", code)
	}

	// A well-formed record stored under its own content address.
	rec := validRecord(t, "henri/point/1")
	body, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	sum := runner.CacheKeySum(rec.Key)
	if code := put(sum, body, ""); code != http.StatusBadRequest {
		t.Fatalf("PUT without digest: %d, want 400", code)
	}
	if code := put(sum, body, strings.Repeat("0", 64)); code != http.StatusBadRequest {
		t.Fatalf("PUT with wrong digest: %d, want 400", code)
	}
	// Misfiled: the body is valid but addressed under a different key's
	// sum.
	wrongSum := runner.CacheKeySum("some other key")
	if code := put(wrongSum, body, bodySum(body)); code != http.StatusBadRequest {
		t.Fatalf("misfiled PUT: %d, want 400", code)
	}
	if code := put(sum, body, bodySum(body)); code != http.StatusNoContent {
		t.Fatalf("valid PUT: %d, want 204", code)
	}

	code, served, hdr := get("/cache/" + sum)
	if code != http.StatusOK {
		t.Fatalf("GET after PUT: %d", code)
	}
	if got := hdr.Get(shaHeader); got != bodySum(served) {
		t.Fatalf("served digest %q does not cover the served bytes", got)
	}
	// The PUT was legacy JSON; the server re-encodes into the binary
	// wire form, so decode with the same sniffing the client uses.
	var back bench.PointRecord
	if err := decodeRecordBytes(served, &back); err != nil || back.Key != rec.Key {
		t.Fatalf("round-tripped record key %q, want %q (err %v)", back.Key, rec.Key, err)
	}
	m := s.Metrics()
	if m.CacheProtocol.Rejected < 4 || m.CacheProtocol.Puts < 4 || m.CacheProtocol.GetHits < 1 {
		t.Fatalf("protocol counters: %+v", m.CacheProtocol)
	}
}

// TestServerMetricsEndpoint: /metrics serves the counter document and
// /healthz answers.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, cr := postSpec(t, ts.URL, CampaignSpec{Experiments: []string{"ext-sched"}, Runs: 1}); code != 200 || cr.Errors != 0 {
		t.Fatalf("seed campaign: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Campaigns.Completed != 1 || m.Latency.Count != 1 || m.Latency.P99Ms <= 0 {
		t.Fatalf("metrics after one campaign: %+v", m)
	}
	if m.Cache.Misses == 0 {
		t.Fatalf("cold campaign recorded no point misses: %+v", m.Cache)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hz.StatusCode)
	}
}

// TestRemoteCachePoisoned: a corrupted entry in the daemon's store must
// be detected by the client through the embedded-key check, counted as
// a mismatch, recomputed locally, and never change the output.
func TestRemoteCachePoisoned(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	s, ts := newTestServer(t, Config{CacheDir: cacheDir})
	rc := NewRemoteCache(ts.URL)

	env, err := core.Env("henri", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := core.ByID("fig3")
	if !ok {
		t.Fatal("fig3 not registered")
	}
	exps := []core.Experiment{e}

	campaign := func() (*runner.CacheStats, string) {
		stats := &runner.CacheStats{}
		res := runner.Collect(runner.Run(env, exps, runner.Options{Workers: 2, CacheStats: stats, Cache: rc}))
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
		return stats, res[0].Rendered
	}

	cold, want := campaign()
	if atomic.LoadInt64(&cold.Misses) == 0 {
		t.Fatal("cold run hit an empty cache")
	}
	warm, got := campaign()
	if got != want {
		t.Fatal("warm remote-cache run differs from cold")
	}
	if atomic.LoadInt64(&warm.Misses) != 0 || atomic.LoadInt64(&warm.Hits) == 0 {
		t.Fatalf("warm run not fully served: %+v", warm)
	}

	// Poison every stored entry: keep it a valid record, but for a
	// different key than its content address claims. Flush the daemon's
	// write-behind buffer into pack segments (the PUTs arrived outside a
	// server-side campaign, so nothing flushed them yet), rewrite every
	// packed record as a poisoned loose file, drop the packs, and hand
	// the directory to a fresh daemon — the restarted-with-a-tampered-
	// store scenario.
	if err := s.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	disk, err := runner.OpenPointCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := 0
	err = disk.Entries(func(sum string, data []byte) error {
		var rec bench.PointRecord
		if bench.IsBinaryRecord(data) {
			if err := rec.DecodeBinary(data); err != nil {
				return err
			}
		} else if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		rec.Key = "poisoned/" + rec.Key
		out, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		poisoned++
		return os.WriteFile(filepath.Join(cacheDir, sum[:2], sum+".json"), out, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if poisoned == 0 {
		t.Fatal("no cache entries found to poison")
	}
	if err := os.RemoveAll(filepath.Join(cacheDir, "packs")); err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{CacheDir: cacheDir})
	rc = NewRemoteCache(ts2.URL)

	after, got := campaign()
	if got != want {
		t.Fatal("output changed after cache poisoning — poisoned entries were served")
	}
	if m := atomic.LoadInt64(&after.Mismatches); m != int64(poisoned) {
		t.Fatalf("detected %d mismatches, poisoned %d entries", m, poisoned)
	}
	if atomic.LoadInt64(&after.Misses) != atomic.LoadInt64(&cold.Misses) {
		t.Fatalf("poisoned run recomputed %d points, cold run computed %d",
			atomic.LoadInt64(&after.Misses), atomic.LoadInt64(&cold.Misses))
	}

	// The recompute repaired the store: the next run is fully served
	// again.
	healed, got := campaign()
	if got != want || atomic.LoadInt64(&healed.Misses) != 0 || atomic.LoadInt64(&healed.Mismatches) != 0 {
		t.Fatalf("store not healed after recompute: %+v", healed)
	}
}

// TestServerKillAndResume: a daemon killed mid-campaign (accepted
// logged, one experiment journaled, no done marker) must resume the
// campaign on restart and then serve the full spec byte-identically
// from the journal.
func TestServerKillAndResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CacheDir: filepath.Join(dir, "cache"),
		StateDir: filepath.Join(dir, "state"),
		Shards:   2,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The stub runs the first experiment for real (so it lands in the
	// journal) and then parks — the campaign never logs "done", exactly a
	// process killed mid-campaign.
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	a.runFn = func(c *campaign) *CampaignResponse {
		sub := *c
		sub.exps = c.exps[:1]
		resp := a.runCampaign(&sub)
		close(started)
		<-release
		return resp
	}
	spec := CampaignSpec{Experiments: []string{"fig3", "ext-sched"}, Seed: 1, Runs: 1}
	c, err := compile(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	go a.submit(c)
	<-started
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same state. The new daemon must notice the
	// unfinished campaign and re-run it to completion.
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.Recovering(); got != 1 {
		t.Fatalf("recovering %d campaigns, want 1", got)
	}
	b.WaitRecovery()

	ts := httptest.NewServer(b.Handler())
	defer ts.Close()
	code, body, cr := postSpec(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit after restart: %d: %s", code, body)
	}
	want := localRendered(t, "henri", 1, 1, "fig3", "ext-sched")
	for i, er := range cr.Results {
		if !er.Cached {
			t.Errorf("%s not replayed from the journal after recovery", er.ID)
		}
		if er.Rendered != want[i] {
			t.Errorf("%s replay differs from a clean local run:\n got %q\nwant %q", er.ID, er.Rendered, want[i])
		}
	}

	// A third daemon on the same state has nothing to recover: the done
	// marker landed.
	cclean, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cclean.Close()
	if got := cclean.Recovering(); got != 0 {
		t.Fatalf("restart after completion still recovers %d campaigns", got)
	}
}

// TestStateLogTornTail: a torn trailing line (killed mid-append) must
// not poison recovery — entries before the tear load, the tear is
// dropped.
func TestStateLogTornTail(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := compile(CampaignSpec{Experiments: []string{"ext-sched"}, Runs: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	accepted, _ := json.Marshal(stateEntry{Schema: stateSchema, ID: c.id, Status: "accepted", Spec: &c.spec})
	log := string(accepted) + "\n" + `{"schema":1,"id":"torn`
	if err := os.WriteFile(filepath.Join(stateDir, "campaigns.jsonl"), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{StateDir: stateDir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Recovering(); got != 1 {
		t.Fatalf("recovering %d campaigns, want the one before the torn tail", got)
	}
	s.WaitRecovery()
	if m := s.Metrics(); m.Campaigns.Completed != 1 {
		t.Fatalf("recovered campaign did not complete: %+v", m.Campaigns)
	}
}
