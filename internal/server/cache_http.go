package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/bench"
	"repro/internal/runner"
)

// The remote cache protocol promotes the on-disk point cache to a
// network service, shaped like a remote build cache:
//
//	GET /cache/{sum}  -> 200 + record JSON (+ X-Content-SHA256), 404 miss
//	PUT /cache/{sum}  <- record JSON + X-Content-SHA256, 204 on store
//
// {sum} is the content address: hex sha256 of the record's full point
// key (runner.CacheKeySum). Verification happens on both ends. The
// server refuses a PUT whose body digest does not match its header or
// whose embedded key does not hash to the addressed sum, so a client
// can never misfile an entry; the client re-verifies the body digest
// and the embedded key on GET, so a poisoned server entry is detected
// (counted as a mismatch, mirroring the on-disk cache) and recomputed,
// never served.

const shaHeader = "X-Content-SHA256"

func bodySum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func validSum(sum string) bool {
	if len(sum) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(sum)
	return err == nil
}

// handleCacheGet serves the raw stored record for a content address.
// Key verification is the client's job (the server only knows the
// hashed address, not which full key the client wants), but the server
// always stamps the body digest so transport corruption is detectable.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	s.proto.gets.Add(1)
	sum := r.PathValue("sum")
	if !validSum(sum) {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache key must be a hex sha256", http.StatusBadRequest)
		return
	}
	if s.cache == nil {
		http.Error(w, "interfd: no persistent cache configured", http.StatusNotFound)
		return
	}
	data, err := s.cache.LoadSum(sum)
	if err != nil {
		if os.IsNotExist(err) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, "interfd: reading cache entry", http.StatusInternalServerError)
		return
	}
	s.proto.getHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(shaHeader, bodySum(data))
	w.Write(data)
}

// handleCachePut stores a record after verifying it end to end: the
// body digest must match the X-Content-SHA256 header, the body must
// decode as a current-schema record, and the embedded key must hash to
// the addressed sum.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	s.proto.puts.Add(1)
	sum := r.PathValue("sum")
	if !validSum(sum) {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache key must be a hex sha256", http.StatusBadRequest)
		return
	}
	if s.cache == nil {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: no persistent cache configured", http.StatusNotImplemented)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: reading body", http.StatusBadRequest)
		return
	}
	if len(body) > maxSpecBytes {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache entry too large", http.StatusRequestEntityTooLarge)
		return
	}
	if got, want := bodySum(body), r.Header.Get(shaHeader); want == "" || got != want {
		s.proto.rejected.Add(1)
		http.Error(w, fmt.Sprintf("interfd: body digest %s does not match %s header %q", got, shaHeader, want),
			http.StatusBadRequest)
		return
	}
	var rec bench.PointRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache entry is not a point record", http.StatusBadRequest)
		return
	}
	if rec.Schema != bench.PointSchema {
		s.proto.rejected.Add(1)
		http.Error(w, fmt.Sprintf("interfd: record schema %d, want %d", rec.Schema, bench.PointSchema),
			http.StatusBadRequest)
		return
	}
	if rec.Key == "" || runner.CacheKeySum(rec.Key) != sum {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: record key does not hash to the addressed sum (misfiled entry refused)",
			http.StatusBadRequest)
		return
	}
	if err := s.cache.Store(rec.Key, rec); err != nil {
		http.Error(w, "interfd: storing cache entry", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// RemoteCache is a runner.CacheStore backed by a daemon's cache
// protocol: a local campaign pointed at it shares computed points with
// every other client of the same daemon. All verification mirrors the
// on-disk cache — a poisoned remote entry surfaces as a key mismatch
// and is recomputed, never trusted.
type RemoteCache struct {
	base   string
	client *http.Client
}

// NewRemoteCache builds a store talking to the daemon at baseURL (e.g.
// "http://host:7077").
func NewRemoteCache(baseURL string) *RemoteCache {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &RemoteCache{base: baseURL, client: http.DefaultClient}
}

// Load implements runner.CacheStore over GET /cache/{sum}.
func (rc *RemoteCache) Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	resp, err := rc.client.Get(rc.base + "/cache/" + runner.CacheKeySum(fullKey))
	if err != nil {
		return bench.PointRecord{}, false, false, true
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return bench.PointRecord{}, false, false, false
	default:
		io.Copy(io.Discard, resp.Body)
		return bench.PointRecord{}, false, false, true
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes+1))
	if err != nil || len(body) > maxSpecBytes {
		return bench.PointRecord{}, false, false, true
	}
	if want := resp.Header.Get(shaHeader); want != "" && bodySum(body) != want {
		// Transport corruption: the bytes do not match the digest the
		// server computed over what it stored.
		return bench.PointRecord{}, false, false, true
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return bench.PointRecord{}, false, false, true
	}
	if rec.Schema != bench.PointSchema {
		return bench.PointRecord{}, false, false, false
	}
	if rec.Key != fullKey {
		return bench.PointRecord{}, false, true, false
	}
	return rec, true, false, false
}

// Store implements runner.CacheStore over PUT /cache/{sum}.
func (rc *RemoteCache) Store(fullKey string, rec bench.PointRecord) error {
	rec.Key = fullKey
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut,
		rc.base+"/cache/"+runner.CacheKeySum(fullKey), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(shaHeader, bodySum(body))
	resp, err := rc.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: cache PUT rejected: %s", resp.Status)
	}
	return nil
}
