package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/runner"
)

// The remote cache protocol promotes the on-disk point cache to a
// network service, shaped like a remote build cache:
//
//	GET /cache/{sum}  -> 200 + record bytes (+ X-Content-SHA256), 404 miss
//	PUT /cache/{sum}  <- record bytes + X-Content-SHA256, 204 on store
//
// {sum} is the content address: hex sha256 of the record's full point
// key (runner.CacheKeySum). Record bytes travel in the compact binary
// encoding (bench.PointRecord.EncodeBinary, "IPR1" framing); both ends
// sniff the framing and still accept legacy JSON records, so an old
// client or a cache directory of loose JSON entries interoperates.
// Verification happens on both ends. The server refuses a PUT whose
// body digest does not match its header or whose embedded key does not
// hash to the addressed sum, so a client can never misfile an entry;
// the client re-verifies the body digest and the embedded key on GET,
// so a poisoned server entry is detected (counted as a mismatch,
// mirroring the on-disk cache) and recomputed, never served.

const shaHeader = "X-Content-SHA256"

func bodySum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// decodeRecordBytes parses record bytes in either wire form: the binary
// framing is sniffed by magic, anything else must be legacy JSON.
func decodeRecordBytes(data []byte, rec *bench.PointRecord) error {
	if bench.IsBinaryRecord(data) {
		return rec.DecodeBinary(data)
	}
	return json.Unmarshal(data, rec)
}

func validSum(sum string) bool {
	if len(sum) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(sum)
	return err == nil
}

// handleCacheGet serves the raw stored record for a content address.
// Key verification is the client's job (the server only knows the
// hashed address, not which full key the client wants), but the server
// always stamps the body digest so transport corruption is detectable.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	s.proto.gets.Add(1)
	sum := r.PathValue("sum")
	if !validSum(sum) {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache key must be a hex sha256", http.StatusBadRequest)
		return
	}
	if s.cache == nil {
		http.Error(w, "interfd: no persistent cache configured", http.StatusNotFound)
		return
	}
	data, err := s.cache.LoadSum(sum)
	if err != nil {
		if os.IsNotExist(err) {
			http.NotFound(w, r)
			return
		}
		http.Error(w, "interfd: reading cache entry", http.StatusInternalServerError)
		return
	}
	s.proto.getHits.Add(1)
	if bench.IsBinaryRecord(data) {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set(shaHeader, bodySum(data))
	w.Write(data)
}

// handleCachePut stores a record after verifying it end to end: the
// body digest must match the X-Content-SHA256 header, the body must
// decode as a current-schema record, and the embedded key must hash to
// the addressed sum.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	s.proto.puts.Add(1)
	sum := r.PathValue("sum")
	if !validSum(sum) {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache key must be a hex sha256", http.StatusBadRequest)
		return
	}
	if s.cache == nil {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: no persistent cache configured", http.StatusNotImplemented)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: reading body", http.StatusBadRequest)
		return
	}
	if len(body) > maxSpecBytes {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache entry too large", http.StatusRequestEntityTooLarge)
		return
	}
	if got, want := bodySum(body), r.Header.Get(shaHeader); want == "" || got != want {
		s.proto.rejected.Add(1)
		http.Error(w, fmt.Sprintf("interfd: body digest %s does not match %s header %q", got, shaHeader, want),
			http.StatusBadRequest)
		return
	}
	var rec bench.PointRecord
	if err := decodeRecordBytes(body, &rec); err != nil {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: cache entry is not a point record", http.StatusBadRequest)
		return
	}
	if rec.Schema != bench.PointSchema {
		s.proto.rejected.Add(1)
		http.Error(w, fmt.Sprintf("interfd: record schema %d, want %d", rec.Schema, bench.PointSchema),
			http.StatusBadRequest)
		return
	}
	if rec.Key == "" || runner.CacheKeySum(rec.Key) != sum {
		s.proto.rejected.Add(1)
		http.Error(w, "interfd: record key does not hash to the addressed sum (misfiled entry refused)",
			http.StatusBadRequest)
		return
	}
	if err := s.cache.Store(rec.Key, rec); err != nil {
		http.Error(w, "interfd: storing cache entry", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// RemoteCache is a runner.CacheStore backed by a daemon's cache
// protocol: a local campaign pointed at it shares computed points with
// every other client of the same daemon. All verification mirrors the
// on-disk cache — a poisoned remote entry surfaces as a key mismatch
// and is recomputed, never trusted.
//
// Transient failures — connection refusals, 5xx bursts, truncated
// bodies — are retried with jittered exponential backoff before the
// operation is reported as an I/O error (at which point the caller
// falls back to recomputing the point). Protocol-level refusals (4xx,
// key mismatches, schema drift) are never retried: repeating them
// cannot change the answer.
type RemoteCache struct {
	base   string
	client *http.Client

	retries    int
	baseDelay  time.Duration
	maxDelay   time.Duration
	reqTimeout time.Duration // per-request deadline; a hung daemon cannot stall a worker shard
	clock      chaos.Clock
	retried    atomic.Int64
	stats      *runner.CacheStats // optional; Retries flows into it
	budget     RetryBudget        // optional; gates every retry when set
	rngMu      sync.Mutex
	rng        *rand.Rand
}

// RetryBudget gates retry traffic. Allow consumes one retry token and
// reports whether the retry may proceed; a shared token bucket (see
// internal/replica) bounds the total retry volume a fleet of clients
// can aim at a struggling daemon, across submission and cache traffic.
type RetryBudget interface {
	Allow() bool
}

// retryAfterCap bounds how long a server-sent Retry-After may park a
// client: an absurd or hostile value must not stall a worker for
// minutes when recomputing the point locally is always available.
const retryAfterCap = 5 * time.Second

// ParseRetryAfter interprets a Retry-After header as delay seconds.
// Absent, non-numeric (HTTP-dates are not produced by interfd) or
// negative values report ok=false — the caller falls back to its own
// jittered exponential backoff. Huge values are capped to max.
func ParseRetryAfter(v string, max time.Duration) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs * float64(time.Second))
	if max > 0 && (d > max || d < 0) { // < 0: float overflow into the sign bit
		d = max
	}
	return d, true
}

// NewRemoteCache builds a store talking to the daemon at baseURL (e.g.
// "http://host:7077"), with 3 retries and 25ms–1s backoff by default.
func NewRemoteCache(baseURL string) *RemoteCache {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &RemoteCache{
		base:       baseURL,
		client:     &http.Client{},
		retries:    3,
		baseDelay:  25 * time.Millisecond,
		maxDelay:   time.Second,
		reqTimeout: 10 * time.Second,
		clock:      chaos.Real(),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetTransport installs an http.RoundTripper (e.g. a chaos.Transport
// for fault drills).
func (rc *RemoteCache) SetTransport(rt http.RoundTripper) { rc.client.Transport = rt }

// SetRetries tunes the retry budget and backoff window; retries < 0 or
// non-positive delays keep the current values.
func (rc *RemoteCache) SetRetries(retries int, base, max time.Duration) {
	if retries >= 0 {
		rc.retries = retries
	}
	if base > 0 {
		rc.baseDelay = base
	}
	if max > 0 {
		rc.maxDelay = max
	}
}

// SetRequestTimeout bounds each individual cache round trip (default
// 10s); d <= 0 keeps the current value. Without it a daemon that
// accepts the connection and then hangs would stall a worker shard
// forever — invisibly to the circuit breaker, which only sees
// operations that return.
func (rc *RemoteCache) SetRequestTimeout(d time.Duration) {
	if d > 0 {
		rc.reqTimeout = d
	}
}

// SetClock substitutes the backoff clock (tests pass chaos.FakeClock).
func (rc *RemoteCache) SetClock(c chaos.Clock) { rc.clock = c }

// SetBudget installs a shared retry budget: every retry must first win
// a token, so a dying daemon cannot trigger an unbounded retry storm
// across submission and cache traffic. nil (the default) leaves
// retries bounded only by the per-operation retry count.
func (rc *RemoteCache) SetBudget(b RetryBudget) { rc.budget = b }

// AttachStats mirrors the retry counter into a campaign's CacheStats
// so recaps and responses report it.
func (rc *RemoteCache) AttachStats(s *runner.CacheStats) { rc.stats = s }

// Retries reports how many transient failures were retried.
func (rc *RemoteCache) Retries() int64 { return rc.retried.Load() }

// retryable reports whether an HTTP status is worth retrying: server
// errors and overload responses are transient, everything else is a
// protocol answer.
func retryable(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// noteRetry counts one retried attempt and sleeps before it: the
// server's Retry-After when it sent one (capped — the server knows its
// own drain rate better than our guess), otherwise exponential in the
// attempt number, capped, with ±50% jitter so a fleet of clients
// recovering together does not stampede the daemon.
func (rc *RemoteCache) noteRetry(attempt int, retryAfter time.Duration) {
	rc.retried.Add(1)
	if rc.stats != nil {
		atomic.AddInt64(&rc.stats.Retries, 1)
	}
	if retryAfter > 0 {
		rc.clock.Sleep(retryAfter)
		return
	}
	d := rc.baseDelay << attempt
	if d > rc.maxDelay || d <= 0 {
		d = rc.maxDelay
	}
	rc.rngMu.Lock()
	jitter := 0.5 + rc.rng.Float64()
	rc.rngMu.Unlock()
	rc.clock.Sleep(time.Duration(float64(d) * jitter))
}

// allowRetry consults the shared retry budget, if any.
func (rc *RemoteCache) allowRetry() bool {
	return rc.budget == nil || rc.budget.Allow()
}

// Load implements runner.CacheStore over GET /cache/{sum}, retrying
// transient failures.
func (rc *RemoteCache) Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	for attempt := 0; ; attempt++ {
		var transient bool
		var retryAfter time.Duration
		rec, ok, mismatch, ioErr, transient, retryAfter = rc.loadOnce(fullKey)
		if !transient || attempt >= rc.retries || !rc.allowRetry() {
			return rec, ok, mismatch, ioErr
		}
		rc.noteRetry(attempt, retryAfter)
	}
}

func (rc *RemoteCache) loadOnce(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr, transient bool, retryAfter time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), rc.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		rc.base+"/cache/"+runner.CacheKeySum(fullKey), nil)
	if err != nil {
		return bench.PointRecord{}, false, false, true, false, 0
	}
	resp, err := rc.client.Do(req)
	if err != nil {
		return bench.PointRecord{}, false, false, true, true, 0
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusNotFound:
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			// The connection died mid-response: the miss answer itself is
			// suspect, so treat it as a transport fault, not a clean miss.
			return bench.PointRecord{}, false, false, true, true, 0
		}
		return bench.PointRecord{}, false, false, false, false, 0
	default:
		io.Copy(io.Discard, resp.Body)
		retryAfter, _ = ParseRetryAfter(resp.Header.Get("Retry-After"), retryAfterCap)
		return bench.PointRecord{}, false, false, true, retryable(resp.StatusCode), retryAfter
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes+1))
	if err != nil || len(body) > maxSpecBytes {
		// A cut connection mid-body; the next attempt gets fresh bytes.
		return bench.PointRecord{}, false, false, true, true, 0
	}
	if want := resp.Header.Get(shaHeader); want != "" && bodySum(body) != want {
		// Transport corruption: the bytes do not match the digest the
		// server computed over what it stored.
		return bench.PointRecord{}, false, false, true, true, 0
	}
	if err := decodeRecordBytes(body, &rec); err != nil {
		return bench.PointRecord{}, false, false, true, true, 0
	}
	if rec.Schema != bench.PointSchema {
		return bench.PointRecord{}, false, false, false, false, 0
	}
	if rec.Key != fullKey {
		// Poisoned entry: retrying would fetch the same bytes.
		return bench.PointRecord{}, false, true, false, false, 0
	}
	return rec, true, false, false, false, 0
}

// Store implements runner.CacheStore over PUT /cache/{sum}, retrying
// transient failures.
func (rc *RemoteCache) Store(fullKey string, rec bench.PointRecord) error {
	rec.Key = fullKey
	body := rec.EncodeBinary()
	for attempt := 0; ; attempt++ {
		err, transient, retryAfter := rc.storeOnce(fullKey, body)
		if !transient || attempt >= rc.retries || !rc.allowRetry() {
			return err
		}
		rc.noteRetry(attempt, retryAfter)
	}
}

func (rc *RemoteCache) storeOnce(fullKey string, body []byte) (err error, transient bool, retryAfter time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), rc.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		rc.base+"/cache/"+runner.CacheKeySum(fullKey), bytes.NewReader(body))
	if err != nil {
		return err, false, 0
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(shaHeader, bodySum(body))
	resp, err := rc.client.Do(req)
	if err != nil {
		return err, true, 0
	}
	defer resp.Body.Close()
	_, copyErr := io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		retryAfter, _ = ParseRetryAfter(resp.Header.Get("Retry-After"), retryAfterCap)
		return fmt.Errorf("server: cache PUT rejected: %s", resp.Status), retryable(resp.StatusCode), retryAfter
	}
	if copyErr != nil {
		// Ack status arrived but the connection died under it; the store
		// may or may not have landed. PUTs are idempotent — retry.
		return fmt.Errorf("server: cache PUT ack truncated: %w", copyErr), true, 0
	}
	return nil, false, 0
}
