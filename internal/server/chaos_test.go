package server

import (
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/runner"
)

// chaosSeed returns the soak seed: CHAOS_SEED from the environment (the
// CI matrix sweeps it), default 1. Every failure message carries the
// seed so a red run reproduces with one env var.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer", v)
		}
		return n
	}
	return 1
}

// soakStorm hammers the daemon with the overlapping spec set from the
// load test, concurrently, and returns each submission's comparable
// view (indexed like the outcomes slice; spec index in the second
// return).
func soakStorm(t *testing.T, url string, specs []CampaignSpec, clients, perClient int) ([]string, []int) {
	t.Helper()
	total := clients * perClient
	views := make([]string, total)
	specIdx := make([]int, total)
	codes := make([]int, total)
	bodies := make([]string, total)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				i := c*perClient + k
				idx := (c + k) % len(specs)
				specIdx[i] = idx
				code, body, cr := postSpec(t, url, specs[idx])
				codes[i], bodies[i] = code, string(body)
				if cr != nil {
					views[i] = comparableView(cr)
				}
			}
		}()
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("storm submission %d (spec %d): %d: %s", i, specIdx[i], code, bodies[i])
		}
	}
	return views, specIdx
}

// TestServerChaosSoak is the chaos battery: the load-test storm runs
// against daemons whose filesystem is actively failing, and the test
// demands the exactly-once and byte-identity contracts still hold.
//
// Scenario A (durability chaos): torn writes, EIO and fsync failures on
// the journal and campaign log only. Results must be byte-identical to
// a fault-free baseline, the cache exactly-once bound must hold with
// equality (the cache is untouched), losses must surface as durability
// warnings, and a clean daemon must reopen the mangled state without
// error.
//
// Scenario B (full chaos): EIO bursts on cache reads (tripping the
// circuit breaker) and ENOSPC on cache temp files (degrading campaigns
// to no-cache mode). Results must still be byte-identical; the misses
// may exceed the union only by the accounted-for failure paths.
func TestServerChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak; skipped with -short")
	}
	seed := chaosSeed(t)
	clients := loadEnvInt("CHAOS_SOAK_CLIENTS", 4)
	perClient := loadEnvInt("CHAOS_SOAK_PER_CLIENT", 6)
	// Wider than the load-test set: distinct seeds and run counts make
	// distinct campaigns (and cache traffic) while still overlapping.
	specs := []CampaignSpec{
		{Experiments: []string{"fig3"}, Seed: 1, Runs: 1},
		{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3", "ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3"}, Seed: 2, Runs: 1},
		{Experiments: []string{"ext-sched"}, Seed: 2, Runs: 1},
		{Experiments: []string{"fig3", "ext-sched"}, Seed: 3, Runs: 1},
		{Experiments: []string{"fig3"}, Seed: 3, Runs: 2},
		{Experiments: []string{"ext-sched"}, Seed: 4, Runs: 1},
	}

	// The storm's spec selection is a deterministic function of the
	// sizing, and at small CHAOS_SOAK_* values it does not reach every
	// spec — so the exactly-once union must only count the specs the
	// storm will actually submit. Uncovered specs are still baselined
	// afterwards (the breaker sub-test needs spec 2's bytes) but their
	// points stay out of the union.
	covered := make([]bool, len(specs))
	for c := 0; c < clients; c++ {
		for k := 0; k < perClient; k++ {
			covered[(c+k)%len(specs)] = true
		}
	}

	// Fault-free serial baseline: the expected bytes per spec and the
	// union of distinct points across the covered specs.
	base, baseURL := newLoadServer(t, clients*perClient)
	want := make([]string, len(specs))
	baseline := func(i int) {
		code, body, cr := postSpec(t, baseURL, specs[i])
		if code != http.StatusOK || cr.Errors != 0 {
			t.Fatalf("baseline spec %d: %d (%d errors): %s", i, code, cr.Errors, body)
		}
		want[i] = comparableView(cr)
	}
	for i := range specs {
		if covered[i] {
			baseline(i)
		}
	}
	union := base.Metrics().Cache.Misses
	if union == 0 {
		t.Fatal("baseline computed nothing")
	}
	for i := range specs {
		if !covered[i] {
			baseline(i)
		}
	}

	t.Run("durability", func(t *testing.T) {
		spec := "torn:p=0.25,match=journal.jsonl;eio-write:p=0.25,match=campaigns.jsonl;fsync:p=0.5,match=journal.jsonl"
		inj := chaos.NewInjector(seed, mustChaosSpec(t, spec))
		dir := t.TempDir()
		cfg := Config{
			CacheDir:    filepath.Join(dir, "cache"),
			StateDir:    filepath.Join(dir, "state"),
			Shards:      4,
			QueueDepth:  clients*perClient + 8,
			MaxInflight: 4,
			FS:          chaos.Flaky(chaos.OS(), inj),
		}
		s, ts := newTestServer(t, cfg)
		views, specIdx := soakStorm(t, ts.URL, specs, clients, perClient)
		for i, v := range views {
			if v != want[specIdx[i]] {
				t.Fatalf("seed %d: submission %d (spec %d) drifted under durability chaos:\n got %s\nwant %s",
					seed, i, specIdx[i], v, want[specIdx[i]])
			}
		}
		m := s.Metrics()
		// The chaos never touches the cache, so exactly-once must hold
		// with equality, exactly like the fault-free storm.
		if m.Cache.Misses != union {
			t.Fatalf("seed %d: durability chaos executed %d points, want exactly %d (stats %+v)",
				seed, m.Cache.Misses, union, m.Cache)
		}
		if inj.Injected() > 0 && m.Robustness.DurabilityWarnings == 0 {
			t.Fatalf("seed %d: %d faults injected but zero durability warnings", seed, inj.Injected())
		}
		t.Logf("seed %d: durability chaos: %d faults injected, %d durability warnings, %d journal-skipped on this boot",
			seed, inj.Injected(), m.Robustness.DurabilityWarnings, m.Robustness.JournalSkipped)

		// The mangled state must reopen cleanly on a healthy filesystem;
		// campaigns whose "done" marker was lost simply re-run (cache
		// replays their points).
		if err := s.Close(); err != nil {
			t.Fatalf("seed %d: closing chaos daemon: %v", seed, err)
		}
		cfg.FS = nil
		fresh, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: reopening state written under chaos: %v", seed, err)
		}
		defer fresh.Close()
		fresh.WaitRecovery()
		// Every recovered campaign must reach a terminal state. Two storm
		// submissions of the same spec can both lose their "done" marker
		// to the chaos, in which case recovery resubmits both and the
		// campaign singleflight merges them — those finish as Deduped,
		// not Completed.
		if fm := fresh.Metrics(); fm.Campaigns.Completed+fm.Campaigns.Deduped != fm.Campaigns.Recovered {
			t.Fatalf("seed %d: recovery incomplete after chaos: %+v", seed, fm.Campaigns)
		}
	})

	t.Run("full", func(t *testing.T) {
		// EIO on cache entry reads plus ENOSPC on cache temp files: loads
		// and stores both fail, the breaker trips on failure streaks
		// (suppressing the cache until a probe succeeds), and campaigns
		// hitting the error threshold degrade to no-cache mode. This
		// daemon runs without a StateDir — durability chaos is scenario
		// A's business, and with no state log there are no boot-time
		// reads, so the unrestricted eio-read event can only ever hit the
		// point cache.
		spec := "eio-read:p=0.6;enospc:p=0.6,match=.tmp-"
		inj := chaos.NewInjector(seed, mustChaosSpec(t, spec))
		s, ts := newTestServer(t, Config{
			CacheDir:    filepath.Join(t.TempDir(), "cache"),
			Shards:      4,
			QueueDepth:  clients*perClient + 8,
			MaxInflight: 4,
			FS:          chaos.Flaky(chaos.OS(), inj),
			// A tight breaker and degrade threshold so the soak exercises
			// trip → probe → recover and per-campaign degradation inside
			// one storm.
			BreakerFailLimit:  6,
			BreakerProbeEvery: 4,
			DegradeAfter:      2,
		})
		views, specIdx := soakStorm(t, ts.URL, specs, clients, perClient)
		for i, v := range views {
			if v != want[specIdx[i]] {
				t.Fatalf("seed %d: submission %d (spec %d) drifted under full chaos:\n got %s\nwant %s",
					seed, i, specIdx[i], v, want[specIdx[i]])
			}
		}
		m := s.Metrics()
		// Every miss beyond the union must be accounted for by a failure
		// path: cache I/O errors, degraded-mode skips, breaker-suppressed
		// ops, or verification mismatches. Anything else would mean a
		// point executed twice for no recorded reason.
		slack := m.Cache.Errors + m.Cache.Skipped + m.Robustness.Breaker.Skipped + m.Cache.Mismatches
		if m.Cache.Misses < union || m.Cache.Misses > union+slack {
			t.Fatalf("seed %d: full chaos executed %d points, want within [%d, %d] (cache %+v, breaker %+v)",
				seed, m.Cache.Misses, union, union+slack, m.Cache, m.Robustness.Breaker)
		}
		if inj.Injected() == 0 {
			t.Fatalf("seed %d: full-chaos schedule injected nothing", seed)
		}
		t.Logf("seed %d: full chaos: %d faults injected, misses %d (union %d), breaker %+v, %d degraded campaigns",
			seed, inj.Injected(), m.Cache.Misses, union, m.Robustness.Breaker, m.Robustness.DegradedCampaigns)
		// The default seed is pinned in CI and must demonstrably reach
		// degradation; other seeds may legitimately miss it. (Breaker
		// trips depend on the global op interleaving, so the guaranteed
		// trip lives in the deterministic sub-test below.)
		if seed == 1 && m.Robustness.DegradedCampaigns == 0 {
			t.Fatal("seed 1: no campaign degraded to no-cache mode")
		}
	})

	t.Run("breaker", func(t *testing.T) {
		// A cache whose every read and write fails: whatever order the
		// shards issue operations in, the failure streak only grows, so
		// the breaker is guaranteed to trip, suppress the remaining ops,
		// and never recover (every probe fails too) — while the campaign
		// itself still serves the exact baseline bytes.
		inj := chaos.NewInjector(seed, mustChaosSpec(t, "eio-read:p=1;enospc:p=1,match=.tmp-"))
		s, ts := newTestServer(t, Config{
			CacheDir:          filepath.Join(t.TempDir(), "cache"),
			Shards:            4,
			FS:                chaos.Flaky(chaos.OS(), inj),
			BreakerFailLimit:  3,
			BreakerProbeEvery: 4,
		})
		code, body, cr := postSpec(t, ts.URL, specs[2])
		if code != http.StatusOK {
			t.Fatalf("seed %d: campaign on a dead cache: %d: %s", seed, code, body)
		}
		if v := comparableView(cr); v != want[2] {
			t.Fatalf("seed %d: dead-cache campaign drifted:\n got %s\nwant %s", seed, v, want[2])
		}
		m := s.Metrics()
		b := m.Robustness.Breaker
		if b.Trips == 0 || b.StateName != "open" {
			t.Fatalf("seed %d: dead cache did not trip the breaker: %+v", seed, b)
		}
		if b.Recoveries != 0 {
			t.Fatalf("seed %d: breaker recovered against a dead cache: %+v", seed, b)
		}
		if b.Skipped == 0 {
			t.Fatalf("seed %d: open breaker suppressed nothing: %+v", seed, b)
		}
	})
}

// TestRemoteCacheChaosTransport: a RemoteCache speaking to a perfectly
// healthy daemon through a hostile network (refused connections, 5xx
// bursts, truncated bodies) absorbs the faults with retries — the
// campaign's bytes are identical to a fault-free local run.
func TestRemoteCacheChaosTransport(t *testing.T) {
	seed := chaosSeed(t)
	_, ts := newTestServer(t, Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	inj := chaos.NewInjector(seed, mustChaosSpec(t, "refuse:p=0.3;http:status=503,p=0.2;truncate:p=0.15"))
	rc := NewRemoteCache(ts.URL)
	rc.SetTransport(&chaos.Transport{Inj: inj})
	rc.SetRetries(3, time.Millisecond, 4*time.Millisecond)
	stats := &runner.CacheStats{}
	rc.AttachStats(stats)

	env, err := core.Env("henri", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	exp, ok := core.ByID("ext-sched")
	if !ok {
		t.Fatal("ext-sched not registered")
	}
	res := runner.Collect(runner.Run(env, []core.Experiment{exp},
		runner.Options{Workers: 2, Format: "ascii", Cache: rc, CacheStats: stats}))
	if res[0].Err != nil {
		t.Fatalf("seed %d: campaign through hostile network failed: %v", seed, res[0].Err)
	}
	if want := localRendered(t, "henri", 1, 1, "ext-sched")[0]; res[0].Rendered != want {
		t.Fatalf("seed %d: output drifted under transport chaos", seed)
	}
	if inj.Injected() > 0 && rc.Retries() == 0 {
		t.Fatalf("seed %d: %d transport faults injected but nothing retried", seed, inj.Injected())
	}
	t.Logf("seed %d: transport chaos: %d faults injected, %d retries, cache errors %d",
		seed, inj.Injected(), rc.Retries(), stats.Errors)
}
